package mpirt

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Fault injection. At the paper's scale (10,075,000 cores) the mean time
// between failures is shorter than a long climate run, so the runtime
// must be exercised against the faults a real machine produces: dying
// processes, corrupted packets, lost packets, slow links. A FaultPlan
// schedules such events deterministically so a chaos test is exactly
// reproducible from its seed.

// FaultKind selects what an injected fault does.
type FaultKind int

const (
	// KillRank unwinds the rank with ErrKilled at the scheduled
	// operation (process death).
	KillRank FaultKind = iota
	// CorruptMsg flips a payload bit of the next send at/after the
	// scheduled operation; the receiver's CRC check reports ErrCorrupt.
	CorruptMsg
	// DropMsg discards the next send at/after the scheduled operation;
	// the receiver's deadline reports ErrTimeout.
	DropMsg
	// DelayMsg defers delivery of the next send at/after the scheduled
	// operation by Delay (a slow link; recoverable without any abort if
	// the delay is below the receive deadline).
	DelayMsg
	// FlipState silently flips one mantissa bit of the rank's resident
	// prognostic state at the end of the step during which the rank's
	// op counter passes AfterOp — the silent-data-corruption model: no
	// NaN, no CFL blowup, nothing the watchdog or a message CRC sees.
	// Only the at-rest scrubber or the invariant ledger can catch it.
	FlipState
	// FlipCheckpoint flips a bit in the rank's own in-memory checkpoint
	// copy right after it is captured — the restore target rots while
	// the live run continues clean. Detected only when a restore (or
	// the end-of-life audit) re-verifies the generation.
	FlipCheckpoint
	// FlipBuddy flips a bit in the buddy-held replica of the rank's
	// checkpoint after the exchange — the partner's copy rots while the
	// owner's stays good, so localized recovery must reject it and
	// escalate.
	FlipBuddy
)

func (k FaultKind) String() string {
	switch k {
	case KillRank:
		return "kill"
	case CorruptMsg:
		return "corrupt"
	case DropMsg:
		return "drop"
	case DelayMsg:
		return "delay"
	case FlipState:
		return "flipState"
	case FlipCheckpoint:
		return "flipCheckpoint"
	case FlipBuddy:
		return "flipBuddy"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault is one scheduled event. Operations are counted per rank across
// every communication call (sends, receives, barriers); a fault fires at
// the first eligible operation once the rank's counter reaches AfterOp,
// and fires exactly once.
type Fault struct {
	Rank    int
	AfterOp int64
	Kind    FaultKind
	Delay   time.Duration // DelayMsg only

	fired bool
}

// FaultPlan is a deterministic schedule of faults plus the per-rank
// operation counters that drive it. The counters persist across worlds:
// a supervisor that rebuilds a World after an abort threads the same
// plan through, so the replayed run continues from the accumulated
// counts and already-fired faults stay fired — retries converge instead
// of re-dying identically forever.
type FaultPlan struct {
	mu     sync.Mutex
	ops    []int64
	faults []*Fault
}

// NewFaultPlan creates an empty plan for an nranks-rank job.
func NewFaultPlan(nranks int) *FaultPlan {
	if nranks < 1 {
		panic(fmt.Sprintf("mpirt: fault plan for %d ranks", nranks))
	}
	return &FaultPlan{ops: make([]int64, nranks)}
}

// Add schedules a fault. Returns the plan for chaining.
func (p *FaultPlan) Add(f Fault) *FaultPlan {
	if f.Rank < 0 || f.Rank >= len(p.ops) {
		panic(fmt.Sprintf("mpirt: fault on rank %d of %d", f.Rank, len(p.ops)))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	c := f
	p.faults = append(p.faults, &c)
	return p
}

// NewChaosPlan schedules n random faults over ranks [0,nranks) and
// operations [1,maxOp], reproducibly from seed. Kinds are drawn roughly
// 2:1:1:1 kill:corrupt:drop:delay; delays are 1–20 ms.
func NewChaosPlan(seed int64, nranks int, maxOp int64, n int) *FaultPlan {
	p := NewFaultPlan(nranks)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		f := Fault{
			Rank:    rng.Intn(nranks),
			AfterOp: 1 + rng.Int63n(maxOp),
		}
		switch rng.Intn(5) {
		case 0, 1:
			f.Kind = KillRank
		case 2:
			f.Kind = CorruptMsg
		case 3:
			f.Kind = DropMsg
		case 4:
			f.Kind = DelayMsg
			f.Delay = time.Duration(1+rng.Intn(20)) * time.Millisecond
		}
		p.Add(f)
	}
	return p
}

// NewFlipChaosPlan schedules n random silent-bit-flip faults over ranks
// [0,nranks) and operations [1,maxOp], reproducibly from seed. Kinds
// are drawn 2:1:1 flipState:flipCheckpoint:flipBuddy — resident-state
// flips are the dominant SDC mode; checkpoint-copy rot exercises the
// verified-restore escalation. Kept separate from NewChaosPlan so
// existing chaos seeds keep producing the exact same schedules.
func NewFlipChaosPlan(seed int64, nranks int, maxOp int64, n int) *FaultPlan {
	p := NewFaultPlan(nranks)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		f := Fault{
			Rank:    rng.Intn(nranks),
			AfterOp: 1 + rng.Int63n(maxOp),
		}
		switch rng.Intn(4) {
		case 0, 1:
			f.Kind = FlipState
		case 2:
			f.Kind = FlipCheckpoint
		case 3:
			f.Kind = FlipBuddy
		}
		p.Add(f)
	}
	return p
}

// ParseFaultPlan builds a plan from a compact spec, the format of the
// camsw -faults flag: comma-separated events
//
//	kill:RANK@OP | corrupt:RANK@OP | drop:RANK@OP | delay:RANK@OP:MS
//	flipState:RANK@OP | flipCheckpoint:RANK@OP | flipBuddy:RANK@OP
//	chaos:N@SEED       (N random comm/kill faults, see NewChaosPlan)
//	chaosflip:N@SEED   (N random silent bit flips, see NewFlipChaosPlan)
//
// e.g. "kill:1@200,corrupt:0@450,delay:2@300:15,flipState:2@120".
func ParseFaultPlan(spec string, nranks int, maxOp int64) (*FaultPlan, error) {
	p := NewFaultPlan(nranks)
	for _, ev := range strings.Split(spec, ",") {
		ev = strings.TrimSpace(ev)
		if ev == "" {
			continue
		}
		kind, rest, ok := strings.Cut(ev, ":")
		if !ok {
			return nil, fmt.Errorf("mpirt: fault spec %q: want KIND:ARGS", ev)
		}
		if kind == "chaos" || kind == "chaosflip" {
			nStr, seedStr, ok := strings.Cut(rest, "@")
			if !ok {
				return nil, fmt.Errorf("mpirt: fault spec %q: want %s:N@SEED", ev, kind)
			}
			n, err1 := strconv.Atoi(nStr)
			seed, err2 := strconv.ParseInt(seedStr, 10, 64)
			if err1 != nil || err2 != nil || n < 0 {
				return nil, fmt.Errorf("mpirt: fault spec %q: bad count or seed", ev)
			}
			sub := NewChaosPlan
			if kind == "chaosflip" {
				sub = NewFlipChaosPlan
			}
			for _, f := range sub(seed, nranks, maxOp, n).faults {
				p.Add(*f)
			}
			continue
		}
		var f Fault
		switch kind {
		case "kill":
			f.Kind = KillRank
		case "corrupt":
			f.Kind = CorruptMsg
		case "drop":
			f.Kind = DropMsg
		case "delay":
			f.Kind = DelayMsg
		case "flipState":
			f.Kind = FlipState
		case "flipCheckpoint":
			f.Kind = FlipCheckpoint
		case "flipBuddy":
			f.Kind = FlipBuddy
		default:
			return nil, fmt.Errorf("mpirt: fault spec %q: unknown kind %q", ev, kind)
		}
		parts := strings.Split(rest, ":")
		rankOp := strings.Split(parts[0], "@")
		if len(rankOp) != 2 {
			return nil, fmt.Errorf("mpirt: fault spec %q: want RANK@OP", ev)
		}
		rank, err1 := strconv.Atoi(rankOp[0])
		op, err2 := strconv.ParseInt(rankOp[1], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("mpirt: fault spec %q: bad rank or op", ev)
		}
		if rank < 0 || rank >= nranks {
			return nil, fmt.Errorf("mpirt: fault spec %q: rank %d of %d", ev, rank, nranks)
		}
		f.Rank, f.AfterOp = rank, op
		if f.Kind == DelayMsg {
			if len(parts) != 2 {
				return nil, fmt.Errorf("mpirt: fault spec %q: want delay:RANK@OP:MS", ev)
			}
			ms, err := strconv.Atoi(parts[1])
			if err != nil || ms < 0 {
				return nil, fmt.Errorf("mpirt: fault spec %q: bad delay", ev)
			}
			f.Delay = time.Duration(ms) * time.Millisecond
		} else if len(parts) != 1 {
			return nil, fmt.Errorf("mpirt: fault spec %q: unexpected extra field", ev)
		}
		p.Add(f)
	}
	return p, nil
}

// Ops returns the accumulated operation count of a rank (diagnostics
// and test calibration). Out-of-range ranks return 0.
func (p *FaultPlan) Ops(rank int) int64 {
	if rank < 0 || rank >= len(p.ops) {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ops[rank]
}

// Pending returns the scheduled faults that have not fired yet, sorted
// by (rank, op) — the supervisor's diagnostic view.
func (p *FaultPlan) Pending() []Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Fault
	for _, f := range p.faults {
		if !f.fired {
			out = append(out, *f)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Rank != out[b].Rank {
			return out[a].Rank < out[b].Rank
		}
		return out[a].AfterOp < out[b].AfterOp
	})
	return out
}

// Shrink derives the plan for a world that dropped rank dead: the dead
// rank's unfired faults are discarded (there is no such rank any more),
// higher ranks — and their accumulated op counters — shift down by one,
// and fired faults stay fired. Used by shrink recovery so the same
// deterministic schedule keeps driving the reduced world.
func (p *FaultPlan) Shrink(dead int) *FaultPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	if dead < 0 || dead >= len(p.ops) || len(p.ops) == 1 {
		panic(fmt.Sprintf("mpirt: shrink rank %d of %d", dead, len(p.ops)))
	}
	q := &FaultPlan{ops: make([]int64, 0, len(p.ops)-1)}
	for r, op := range p.ops {
		if r != dead {
			q.ops = append(q.ops, op)
		}
	}
	for _, f := range p.faults {
		if f.Rank == dead && !f.fired {
			continue
		}
		c := *f
		if c.Rank > dead {
			c.Rank--
		}
		q.faults = append(q.faults, &c)
	}
	return q
}

// isFlip reports whether k is a silent-data-corruption kind. Flip
// faults never fire at communication operations: they target resident
// state and checkpoint copies, and are polled by the integrity layer
// through FireIntegrity instead.
func (k FaultKind) isFlip() bool {
	return k == FlipState || k == FlipCheckpoint || k == FlipBuddy
}

// fire advances rank's op counter and returns the first due, unfired,
// kind-eligible fault (marked fired), or nil. Kill faults are eligible
// at any operation; message faults only at sends; flip faults never
// (they fire through FireIntegrity).
func (p *FaultPlan) fire(rank int, isSend bool) *Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ops[rank]++
	op := p.ops[rank]
	for _, f := range p.faults {
		if f.fired || f.Rank != rank || f.AfterOp > op {
			continue
		}
		if f.Kind.isFlip() {
			continue
		}
		if f.Kind != KillRank && !isSend {
			continue
		}
		f.fired = true
		return f
	}
	return nil
}

// FireIntegrity returns rank's first due, unfired fault of the given
// flip kind (marked fired), or nil. Unlike fire it does NOT advance the
// op counter: the schedule stays aligned with communication operations,
// and the integrity layer polls at its own points (end of step,
// checkpoint capture, buddy exchange). Fired faults stay fired, so a
// post-recovery replay of the same step does not re-flip — replays
// converge exactly as they do for kills.
func (p *FaultPlan) FireIntegrity(rank int, kind FaultKind) *Fault {
	if !kind.isFlip() {
		panic(fmt.Sprintf("mpirt: FireIntegrity with non-flip kind %v", kind))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if rank < 0 || rank >= len(p.ops) {
		return nil
	}
	op := p.ops[rank]
	for _, f := range p.faults {
		if f.fired || f.Rank != rank || f.Kind != kind || f.AfterOp > op {
			continue
		}
		f.fired = true
		return f
	}
	return nil
}
