// Package mpirt is a miniature in-process message-passing runtime with
// MPI-like semantics: a fixed set of ranks running concurrently (as
// goroutines), point-to-point Send/Isend/Recv/Irecv with tag matching,
// and the collectives CAM-SE needs (Barrier, Allreduce, Bcast, Gather).
//
// On TaihuLight one MPI process runs per core group ("MPI + X", §5.3 of
// the paper); here one goroutine runs per rank and owns one simulated
// core group. The runtime counts messages and bytes per rank so the
// machine model in internal/perf can convert communication volume into
// modeled network time with a LogGP-style cost.
//
// At the 10M-core scale of the paper's headline runs, failures are part
// of the workload, so the runtime also carries failure semantics:
//   - every payload is CRC-protected (corruption is detected, not
//     silently averaged into the fields),
//   - receives can carry deadlines (a lost message surfaces as
//     ErrTimeout instead of a hang),
//   - when any rank faults, the world is poisoned: every peer blocked in
//     a receive or barrier unblocks with ErrWorldAborted and World.Run
//     returns a RunError naming the faulty rank,
//   - a deterministic, seeded FaultPlan (faults.go) can kill ranks and
//     corrupt, drop, or delay messages to exercise all of the above.
package mpirt

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"swcam/internal/obs"
)

// Stats accumulates per-rank communication counters.
type Stats struct {
	MsgsSent   int64
	BytesSent  int64
	MsgsRecvd  int64
	BytesRecvd int64
	// Retransmission counters (failure detector, see RetryPolicy):
	// attempts counts retry cycles entered after a timeout/CRC failure,
	// recovered counts messages ultimately delivered from the
	// retransmit log instead of being escalated.
	RetxAttempts  int64
	RetxRecovered int64
	// Collective activity: operations entered and wall time inside them
	// (barrier, reduce, bcast, allreduce, gather). The scaling campaign
	// reads these back as the per-phase "collective" bucket.
	CollOps int64
	CollNs  int64
}

type message struct {
	src, tag int
	seq      uint64 // position in the (src, dst, tag) stream; see seqKey
	data     []float64
	crc      uint32
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// payloadCRC hashes a float64 payload bit-exactly (the checksum a real
// transport would compute over the wire bytes). Table-driven over the
// value bits directly rather than via crc32.Update on a scratch byte
// slice: the stdlib's accelerated Castagnoli path would force the
// scratch to the heap, costing an allocation per message on the
// steady-state exchange path.
func payloadCRC(data []float64) uint32 {
	crc := ^uint32(0)
	for _, v := range data {
		bits := math.Float64bits(v)
		for k := 0; k < 64; k += 8 {
			crc = crcTable[byte(crc)^byte(bits>>k)] ^ (crc >> 8)
		}
	}
	return ^crc
}

// World owns the mailboxes and counters of an nranks-rank job.
type World struct {
	n     int
	boxes []*mailbox // one per destination rank
	stats []Stats

	barrier *barrier

	recvTimeout time.Duration // default deadline for receives; 0 = wait forever
	faults      *FaultPlan    // nil = fault-free
	tracer      *obs.Tracer   // nil = untraced (see obs.go)
	retry       RetryPolicy   // bounded retransmission; zero value = off

	// sendSeq[src] numbers the messages of each (dst, tag) stream this
	// rank sends. One map per rank, touched only by that rank's
	// goroutine, so sends stay lock-free.
	sendSeq []map[seqKey]uint64

	aborted   atomic.Bool
	abortMu   sync.Mutex
	abortRank int
	abortErr  error
}

// mailbox is the receive queue of one rank: a condition-variable-guarded
// list supporting tag- and source-selective matching like MPI, but with
// strictly sequenced delivery per (src, tag) stream: a message is only
// matched when it carries the stream's next expected sequence number. A
// gap — the expected message was dropped or delayed on the wire — makes
// the receive wait (and eventually time out into the retransmission
// path) instead of silently consuming a later message of the same
// stream, and a stale sequence number (the delayed original of a
// message already recovered from the retransmit log) is discarded. The
// mailbox also holds the senders' clean payload log — the "NIC buffer"
// a real transport retries from.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
	retx    []message         // clean copies, send order (retry enabled only)
	nextSeq map[seqKey]uint64 // next expected seq per (src, tag) stream
	// free recycles delivered payload buffers back to senders (the
	// steady-state zero-allocation path). Only used with retransmission
	// disabled: the retx log holds references to sent payloads, so
	// recycling them while retries are possible would corrupt the log.
	free [][]float64
}

// getBuf takes a recycled payload buffer of length n from the freelist,
// or allocates one. Called by senders targeting this mailbox.
func (b *mailbox) getBuf(n int) []float64 {
	b.mu.Lock()
	for i := len(b.free) - 1; i >= 0; i-- {
		if cap(b.free[i]) >= n {
			buf := b.free[i][:n]
			b.free[i] = b.free[len(b.free)-1]
			b.free[len(b.free)-1] = nil
			b.free = b.free[:len(b.free)-1]
			b.mu.Unlock()
			return buf
		}
	}
	b.mu.Unlock()
	return make([]float64, n)
}

// putBuf returns a delivered payload buffer to the freelist once the
// receiver has copied it out.
func (b *mailbox) putBuf(buf []float64) {
	if cap(buf) == 0 {
		return
	}
	b.mu.Lock()
	b.free = append(b.free, buf)
	b.mu.Unlock()
}

// seqKey identifies one ordered message stream: the peer rank plus the
// tag (the sender keys by destination, the receiver by source).
type seqKey struct {
	rank int
	tag  int
}

func newMailbox() *mailbox {
	b := &mailbox{nextSeq: make(map[seqKey]uint64)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) put(m message) {
	b.mu.Lock()
	b.pending = append(b.pending, m)
	b.mu.Unlock()
	b.cond.Broadcast()
}

// take blocks until the next in-sequence message of the (src, tag)
// stream is available and removes it. Out-of-sequence arrivals do not
// match: a gap keeps the receive waiting (retransmission's job), a
// stale duplicate is discarded on sight. With d > 0 the wait is
// bounded: expiry returns ErrTimeout. A poisoned world returns
// ErrWorldAborted instead of blocking forever.
func (b *mailbox) take(w *World, src, tag int, d time.Duration) (message, error) {
	var deadline time.Time
	if d > 0 {
		deadline = time.Now().Add(d)
		timer := time.AfterFunc(d, func() {
			b.mu.Lock()
			b.cond.Broadcast()
			b.mu.Unlock()
		})
		defer timer.Stop()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if w.aborted.Load() {
			return message{}, ErrWorldAborted
		}
		exp := b.nextSeq[seqKey{src, tag}]
		for i := 0; i < len(b.pending); i++ {
			m := b.pending[i]
			if m.src != src || m.tag != tag {
				continue
			}
			if m.seq < exp {
				// Stale duplicate: the delayed original of a message
				// already delivered via the retransmit log. Discard it.
				b.pending = append(b.pending[:i], b.pending[i+1:]...)
				i--
				continue
			}
			if m.seq == exp {
				b.pending = append(b.pending[:i], b.pending[i+1:]...)
				b.nextSeq[seqKey{src, tag}] = exp + 1
				return m, nil
			}
			// m.seq > exp: the expected message is missing (dropped or
			// still in flight). Matching this one instead would hand the
			// caller the wrong round's data — keep waiting.
		}
		if d > 0 && !time.Now().Before(deadline) {
			return message{}, fmt.Errorf("%w: from rank %d tag %d after %v", ErrTimeout, src, tag, d)
		}
		b.cond.Wait()
	}
}

// NewWorld creates a world with nranks ranks.
func NewWorld(nranks int) *World {
	if nranks < 1 {
		panic(fmt.Sprintf("mpirt: world size %d", nranks))
	}
	w := &World{
		n:       nranks,
		boxes:   make([]*mailbox, nranks),
		stats:   make([]Stats, nranks),
		barrier: newBarrier(nranks),
		sendSeq: make([]map[seqKey]uint64, nranks),
	}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
		w.sendSeq[i] = make(map[seqKey]uint64)
	}
	return w
}

// SetRecvTimeout sets the default deadline applied to every blocking
// receive (Recv, RecvErr, Irecv's Wait, and the receives inside the
// collectives). Zero restores the MPI default of waiting forever. A
// per-call RecvTimeout overrides it. Set it before Run.
func (w *World) SetRecvTimeout(d time.Duration) { w.recvTimeout = d }

// SetFaults attaches a fault-injection plan. The plan keeps its own
// per-rank operation counters, so the same plan threaded through
// successive worlds (a supervisor's retries) continues where it left off
// and each scheduled fault fires exactly once. Set it before Run.
func (w *World) SetFaults(p *FaultPlan) { w.faults = p }

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Stats returns a copy of the accumulated counters for a rank. An
// out-of-range rank returns a zero Stats rather than panicking, so
// diagnostic paths that probe a dead or mis-addressed rank stay safe.
func (w *World) Stats(rank int) Stats {
	if rank < 0 || rank >= w.n {
		return Stats{}
	}
	return w.stats[rank]
}

// TotalBytes returns the total bytes sent across all ranks.
func (w *World) TotalBytes() int64 {
	var total int64
	for i := range w.stats {
		total += w.stats[i].BytesSent
	}
	return total
}

// Aborted reports whether the world has been poisoned.
func (w *World) Aborted() bool { return w.aborted.Load() }

// poison marks the world dead and wakes every blocked rank. The first
// caller's (rank, err) is recorded as the root cause; ranks that fail
// afterwards — typically with ErrWorldAborted as a consequence — do not
// overwrite it.
func (w *World) poison(rank int, err error) {
	w.abortMu.Lock()
	if w.abortErr == nil {
		w.abortRank, w.abortErr = rank, err
	}
	w.abortMu.Unlock()
	w.aborted.Store(true)
	for _, b := range w.boxes {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	}
	w.barrier.mu.Lock()
	w.barrier.cond.Broadcast()
	w.barrier.mu.Unlock()
}

// Run spawns fn on every rank and blocks until all return. Each rank
// receives its own Comm handle.
//
// Failure semantics: if any rank faults — an injected fault, a failed
// CRC check, a receive timeout, an explicit Fail, or a plain panic in fn
// — the world is poisoned so that every other rank blocked in a receive,
// barrier, or collective unblocks with ErrWorldAborted. Run then returns
// a *RunError naming the first genuinely faulty rank and wrapping its
// cause. Run never deadlocks on a faulty rank and never re-raises the
// panic; a nil return means every rank completed.
func (w *World) Run(fn func(c *Comm)) error {
	var wg sync.WaitGroup
	for r := 0; r < w.n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					err, ok := p.(rankFailure)
					if ok {
						w.poison(rank, err.err)
					} else {
						w.poison(rank, fmt.Errorf("%w: %v", ErrPanic, p))
					}
				}
			}()
			fn(&Comm{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
	w.abortMu.Lock()
	rank, cause := w.abortRank, w.abortErr
	w.abortMu.Unlock()
	if cause != nil {
		return &RunError{Rank: rank, Err: cause}
	}
	return nil
}

// Comm is one rank's handle to the world.
type Comm struct {
	world *World
	rank  int

	// Pooled collective scratch (grown on demand, reused every call) so
	// the steady-state Allreduce/AllreduceScalar hot paths — the blowup
	// watchdog runs one per checked step — allocate nothing.
	arScratch   []float64
	arIn, arOut []float64
}

// Rank returns this rank's id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.n }

// faultPoint advances this rank's operation counter and fires any due
// fault. Kill faults unwind the rank immediately; message faults are
// returned to the caller (Send) to apply.
func (c *Comm) faultPoint(isSend bool) *Fault {
	p := c.world.faults
	if p == nil {
		return nil
	}
	f := p.fire(c.rank, isSend)
	if f != nil && f.Kind == KillRank {
		fail(fmt.Errorf("%w (rank %d, op %d)", ErrKilled, c.rank, f.AfterOp))
	}
	return f
}

// Send delivers a copy of data to dst with the given tag. The copy makes
// the semantics of a real network explicit: the sender may reuse its
// buffer immediately (MPI's buffered-send behaviour). The payload is
// CRC-stamped at send time; the receive side verifies it.
func (c *Comm) Send(dst, tag int, data []float64) {
	if dst < 0 || dst >= c.world.n {
		panic(fmt.Sprintf("mpirt: send to rank %d of %d", dst, c.world.n))
	}
	if c.world.aborted.Load() {
		fail(ErrWorldAborted)
	}
	f := c.faultPoint(true)
	// The payload copy comes from the destination mailbox's freelist
	// when retransmission is off (the receiver recycles it after the
	// copy-out), so the steady-state exchange allocates nothing.
	var buf []float64
	if c.world.retry.enabled() {
		buf = make([]float64, len(data))
	} else {
		buf = c.world.boxes[dst].getBuf(len(data))
	}
	copy(buf, data)
	sk := seqKey{dst, tag}
	seq := c.world.sendSeq[c.rank][sk]
	c.world.sendSeq[c.rank][sk] = seq + 1
	m := message{src: c.rank, tag: tag, seq: seq, data: buf, crc: payloadCRC(buf)}

	st := &c.world.stats[c.rank]
	st.MsgsSent++
	st.BytesSent += int64(len(data) * 8)

	box := c.world.boxes[dst]
	// With retransmission enabled the clean message is logged before any
	// fault applies — the sender's NIC keeps the payload until the
	// receiver acknowledges it, so corruption or loss on the wire leaves
	// an intact copy to retry from.
	if c.world.retry.enabled() {
		box.logRetx(m)
	}
	if f != nil {
		switch f.Kind {
		case DropMsg:
			return // silently lost: the receiver's deadline must catch it
		case CorruptMsg:
			// Flip one mantissa bit after the CRC was computed, exactly
			// like corruption on the wire; zero-length payloads corrupt
			// the checksum itself so detection still triggers. The flip
			// happens on a private copy so the logged clean payload is
			// untouched.
			if len(m.data) > 0 {
				corrupted := append([]float64(nil), m.data...)
				corrupted[0] = math.Float64frombits(math.Float64bits(corrupted[0]) ^ 1)
				m.data = corrupted
			} else {
				m.crc ^= 0xDEADBEEF
			}
		case DelayMsg:
			d := f.Delay
			if d <= 0 {
				d = 10 * time.Millisecond
			}
			time.AfterFunc(d, func() { box.put(m) })
			return
		}
	}
	box.put(m)
}

// Recv blocks until a message from src with the given tag arrives and
// copies it into buf. Any failure — timeout (under the world's default
// receive deadline), CRC mismatch, size mismatch, poisoned world —
// unwinds the rank via Fail so World.Run reports it; use RecvErr or
// RecvTimeout to handle the error in place instead.
func (c *Comm) Recv(src, tag int, buf []float64) {
	if err := c.RecvTimeout(src, tag, buf, c.world.recvTimeout); err != nil {
		fail(err)
	}
}

// RecvErr is Recv with an error return (world-default deadline).
func (c *Comm) RecvErr(src, tag int, buf []float64) error {
	return c.RecvTimeout(src, tag, buf, c.world.recvTimeout)
}

// RecvTimeout receives with an explicit deadline (0 waits forever). It
// returns ErrTimeout if no matching message arrives in time, ErrCorrupt
// on a CRC mismatch, ErrSize on a length mismatch, and ErrWorldAborted
// if the world was poisoned while waiting — all wrapped with context.
//
// When the world carries a RetryPolicy, a timeout or CRC failure is not
// final: the receiver backs off (exponentially, with deterministic
// jitter) and re-requests the message from the sender's retransmit log,
// up to MaxAttempts total attempts. Only after the budget is exhausted
// does the failure surface — the failure-detector rung of the recovery
// ladder: a rank is declared suspect by escalation, never by a single
// lost packet.
func (c *Comm) RecvTimeout(src, tag int, buf []float64, d time.Duration) error {
	c.faultPoint(false)
	rp := c.world.retry
	attempts := rp.attempts()
	for a := 1; ; a++ {
		seq, err := c.recvOnce(src, tag, buf, d)
		if err == nil {
			return nil
		}
		corrupt := errors.Is(err, ErrCorrupt)
		if !corrupt && !errors.Is(err, ErrTimeout) {
			return err
		}
		if a >= attempts {
			return err
		}
		// Which message to re-request: on a CRC failure, the one just
		// delivered mangled; on a timeout, the stream's next expected
		// sequence number (the gap that blocked matching).
		want := seq
		if !corrupt {
			want = c.world.boxes[c.rank].expectedSeq(src, tag)
		}
		st := &c.world.stats[c.rank]
		st.RetxAttempts++
		rp.sleep(c.rank, a)
		if c.recvRetx(src, tag, want, buf) {
			st.RetxRecovered++
			st.MsgsRecvd++
			st.BytesRecvd += int64(len(buf) * 8)
			return nil
		}
		if c.world.aborted.Load() {
			return ErrWorldAborted
		}
	}
}

// recvOnce is a single mailbox receive attempt with CRC verification.
// The returned sequence number identifies the taken message when the
// verification failed (retransmission re-requests exactly it).
func (c *Comm) recvOnce(src, tag int, buf []float64, d time.Duration) (uint64, error) {
	m, err := c.world.boxes[c.rank].take(c.world, src, tag, d)
	if err != nil {
		return 0, err
	}
	if len(m.data) != len(buf) {
		return m.seq, fmt.Errorf("%w: from %d tag %d: sent %d, buffer %d",
			ErrSize, src, tag, len(m.data), len(buf))
	}
	if payloadCRC(m.data) != m.crc {
		return m.seq, fmt.Errorf("%w: from %d tag %d (%d values)", ErrCorrupt, src, tag, len(m.data))
	}
	// Acknowledge: the sender's retransmit log no longer needs this
	// message.
	if c.world.retry.enabled() {
		c.world.boxes[c.rank].ackRetx(m.src, m.tag, m.seq)
	}
	copy(buf, m.data)
	if !c.world.retry.enabled() {
		// Recycle the payload for the next sender targeting this rank
		// (with retries possible the retx log still references it).
		c.world.boxes[c.rank].putBuf(m.data)
	}
	st := &c.world.stats[c.rank]
	st.MsgsRecvd++
	st.BytesRecvd += int64(len(buf) * 8)
	return m.seq, nil
}

// Request is the handle of a pending non-blocking operation. The zero
// value is a completed, successful request; IrecvInto/IsendInto
// (re)initialize caller-owned Requests so pooled hot paths issue
// non-blocking operations without allocating.
type Request struct {
	done bool
	err  error
	// Pending receive, performed by the first Wait: nil comm means no
	// deferred work (sends complete eagerly).
	comm     *Comm
	src, tag int
	buf      []float64
}

// WaitErr blocks until the operation completes and returns its outcome.
// Completing a request twice is a no-op: the second and later calls
// return the cached result of the first (MPI_Wait on an inactive
// request), which keeps retry loops and partially-drained WaitAlls safe.
func (r *Request) WaitErr() error { return r.WaitTimeout(0) }

// WaitTimeout is WaitErr with an explicit receive deadline (0 uses the
// world default). The deadline only applies to the first, completing
// call; later calls return the cached result.
func (r *Request) WaitTimeout(d time.Duration) error {
	if r.done {
		return r.err
	}
	r.done = true
	if r.comm != nil {
		c := r.comm
		if d <= 0 {
			d = c.world.recvTimeout
		}
		r.err = c.RecvTimeout(r.src, r.tag, r.buf, d)
		r.comm, r.buf = nil, nil
	}
	return r.err
}

// Wait blocks until the operation completes, unwinding the rank via
// Fail on failure. Like WaitErr it is idempotent — a second Wait is a
// no-op unless the first failed, in which case the cached error is
// re-raised.
func (r *Request) Wait() {
	if err := r.WaitErr(); err != nil {
		fail(err)
	}
}

// WaitAll completes every request in the slice.
func WaitAll(reqs []*Request) {
	for _, r := range reqs {
		r.Wait()
	}
}

// Isend starts a non-blocking send. Delivery is eager (the runtime has
// unbounded mailboxes), so the returned request completes immediately;
// it exists so callers keep the issue/wait structure of the real code.
func (c *Comm) Isend(dst, tag int, data []float64) *Request {
	r := new(Request)
	c.IsendInto(r, dst, tag, data)
	return r
}

// IsendInto is Isend into a caller-owned request — the allocation-free
// variant for pooled hot paths (the halo exchange reuses its request
// slots every call).
func (c *Comm) IsendInto(r *Request, dst, tag int, data []float64) {
	c.Send(dst, tag, data)
	*r = Request{done: true}
}

// Irecv starts a non-blocking receive into buf. The matching and copy
// happen at Wait, so computation placed between Irecv and Wait genuinely
// overlaps with message arrival — the property the redesigned
// bndry_exchangev (§7.6) exploits.
func (c *Comm) Irecv(src, tag int, buf []float64) *Request {
	r := new(Request)
	c.IrecvInto(r, src, tag, buf)
	return r
}

// IrecvInto is Irecv into a caller-owned request — the allocation-free
// variant for pooled hot paths.
func (c *Comm) IrecvInto(r *Request, src, tag int, buf []float64) {
	*r = Request{comm: c, src: src, tag: tag, buf: buf}
}
