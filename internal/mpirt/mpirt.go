// Package mpirt is a miniature in-process message-passing runtime with
// MPI-like semantics: a fixed set of ranks running concurrently (as
// goroutines), point-to-point Send/Isend/Recv/Irecv with tag matching,
// and the collectives CAM-SE needs (Barrier, Allreduce, Bcast, Gather).
//
// On TaihuLight one MPI process runs per core group ("MPI + X", §5.3 of
// the paper); here one goroutine runs per rank and owns one simulated
// core group. The runtime counts messages and bytes per rank so the
// machine model in internal/perf can convert communication volume into
// modeled network time with a LogGP-style cost.
package mpirt

import (
	"fmt"
	"sync"
)

// Stats accumulates per-rank communication counters.
type Stats struct {
	MsgsSent   int64
	BytesSent  int64
	MsgsRecvd  int64
	BytesRecvd int64
}

type message struct {
	src, tag int
	data     []float64
}

// World owns the mailboxes and counters of an nranks-rank job.
type World struct {
	n     int
	boxes []*mailbox // one per destination rank
	stats []Stats

	barrier *barrier
	coll    []chan []float64 // dedicated collective channels, one per rank
}

// mailbox is the receive queue of one rank: a condition-variable-guarded
// list supporting tag- and source-selective matching like MPI.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) put(m message) {
	b.mu.Lock()
	b.pending = append(b.pending, m)
	b.mu.Unlock()
	b.cond.Broadcast()
}

// take blocks until a message from src with the given tag is available
// and removes it (first matching message, preserving per-pair order).
func (b *mailbox) take(src, tag int) message {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i, m := range b.pending {
			if m.src == src && m.tag == tag {
				b.pending = append(b.pending[:i], b.pending[i+1:]...)
				return m
			}
		}
		b.cond.Wait()
	}
}

// NewWorld creates a world with nranks ranks.
func NewWorld(nranks int) *World {
	if nranks < 1 {
		panic(fmt.Sprintf("mpirt: world size %d", nranks))
	}
	w := &World{
		n:       nranks,
		boxes:   make([]*mailbox, nranks),
		stats:   make([]Stats, nranks),
		barrier: newBarrier(nranks),
		coll:    make([]chan []float64, nranks),
	}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
		w.coll[i] = make(chan []float64, 1)
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Stats returns a copy of the accumulated counters for a rank.
func (w *World) Stats(rank int) Stats { return w.stats[rank] }

// TotalBytes returns the total bytes sent across all ranks.
func (w *World) TotalBytes() int64 {
	var total int64
	for i := range w.stats {
		total += w.stats[i].BytesSent
	}
	return total
}

// Run spawns fn on every rank and blocks until all return. Each rank
// receives its own Comm handle. A panic in any rank is re-raised in the
// caller with the rank attached.
func (w *World) Run(fn func(c *Comm)) {
	var wg sync.WaitGroup
	panics := make([]any, w.n)
	for r := 0; r < w.n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[rank] = p
				}
			}()
			fn(&Comm{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
	for r, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("mpirt: rank %d faulted: %v", r, p))
		}
	}
}

// Comm is one rank's handle to the world.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this rank's id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.n }

// Send delivers a copy of data to dst with the given tag. The copy makes
// the semantics of a real network explicit: the sender may reuse its
// buffer immediately (MPI's buffered-send behaviour).
func (c *Comm) Send(dst, tag int, data []float64) {
	if dst < 0 || dst >= c.world.n {
		panic(fmt.Sprintf("mpirt: send to rank %d of %d", dst, c.world.n))
	}
	buf := append([]float64(nil), data...)
	c.world.boxes[dst].put(message{src: c.rank, tag: tag, data: buf})
	st := &c.world.stats[c.rank]
	st.MsgsSent++
	st.BytesSent += int64(len(data) * 8)
}

// Recv blocks until a message from src with the given tag arrives and
// copies it into buf, whose length must match the sent length.
func (c *Comm) Recv(src, tag int, buf []float64) {
	m := c.world.boxes[c.rank].take(src, tag)
	if len(m.data) != len(buf) {
		panic(fmt.Sprintf("mpirt: recv size mismatch from %d tag %d: sent %d, buffer %d",
			src, tag, len(m.data), len(buf)))
	}
	copy(buf, m.data)
	st := &c.world.stats[c.rank]
	st.MsgsRecvd++
	st.BytesRecvd += int64(len(buf) * 8)
}

// Request is the handle of a pending non-blocking operation.
type Request struct {
	done bool
	wait func()
}

// Wait blocks until the operation completes. Waiting twice panics.
func (r *Request) Wait() {
	if r.done {
		panic("mpirt: Wait on completed request")
	}
	r.done = true
	if r.wait != nil {
		r.wait()
	}
}

// WaitAll completes every request in the slice.
func WaitAll(reqs []*Request) {
	for _, r := range reqs {
		r.Wait()
	}
}

// Isend starts a non-blocking send. Delivery is eager (the runtime has
// unbounded mailboxes), so the returned request completes immediately;
// it exists so callers keep the issue/wait structure of the real code.
func (c *Comm) Isend(dst, tag int, data []float64) *Request {
	c.Send(dst, tag, data)
	return &Request{}
}

// Irecv starts a non-blocking receive into buf. The matching and copy
// happen at Wait, so computation placed between Irecv and Wait genuinely
// overlaps with message arrival — the property the redesigned
// bndry_exchangev (§7.6) exploits.
func (c *Comm) Irecv(src, tag int, buf []float64) *Request {
	return &Request{wait: func() { c.Recv(src, tag, buf) }}
}
