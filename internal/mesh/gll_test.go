package mesh

import (
	"math"
	"testing"
)

func TestGLLNp4Values(t *testing.T) {
	// The CAM-SE default: np=4. Nodes are +-1 and +-1/sqrt(5); weights
	// 1/6 and 5/6.
	nodes, weights := GLL(4)
	s5 := 1 / math.Sqrt(5)
	wantN := []float64{-1, -s5, s5, 1}
	wantW := []float64{1.0 / 6, 5.0 / 6, 5.0 / 6, 1.0 / 6}
	for i := range wantN {
		if math.Abs(nodes[i]-wantN[i]) > 1e-14 {
			t.Errorf("node %d = %.16f, want %.16f", i, nodes[i], wantN[i])
		}
		if math.Abs(weights[i]-wantW[i]) > 1e-14 {
			t.Errorf("weight %d = %.16f, want %.16f", i, weights[i], wantW[i])
		}
	}
}

func TestGLLWeightsSumToTwo(t *testing.T) {
	for np := 2; np <= 12; np++ {
		_, w := GLL(np)
		sum := 0.0
		for _, x := range w {
			sum += x
		}
		if math.Abs(sum-2) > 1e-13 {
			t.Errorf("np=%d: weights sum to %.16f", np, sum)
		}
	}
}

func TestGLLQuadratureExactness(t *testing.T) {
	// GLL with np points integrates polynomials up to degree 2np-3 exactly.
	for np := 2; np <= 8; np++ {
		x, w := GLL(np)
		maxDeg := 2*np - 3
		for deg := 0; deg <= maxDeg; deg++ {
			got := 0.0
			for i := range x {
				got += w[i] * math.Pow(x[i], float64(deg))
			}
			want := 0.0
			if deg%2 == 0 {
				want = 2 / float64(deg+1)
			}
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("np=%d deg=%d: integral = %v, want %v", np, deg, got, want)
			}
		}
	}
}

func TestGLLNodesSymmetricAscending(t *testing.T) {
	for np := 2; np <= 10; np++ {
		x, _ := GLL(np)
		for i := 1; i < np; i++ {
			if x[i] <= x[i-1] {
				t.Fatalf("np=%d: nodes not ascending at %d", np, i)
			}
		}
		for i := 0; i < np; i++ {
			if math.Abs(x[i]+x[np-1-i]) > 1e-13 {
				t.Fatalf("np=%d: nodes not symmetric", np)
			}
		}
	}
}

func TestDerivativeMatrixExactOnPolynomials(t *testing.T) {
	// D must differentiate polynomials of degree < np exactly at the nodes.
	for np := 2; np <= 8; np++ {
		x, _ := GLL(np)
		d := DerivativeMatrix(np)
		for deg := 0; deg < np; deg++ {
			for i := 0; i < np; i++ {
				got := 0.0
				for j := 0; j < np; j++ {
					got += d[i][j] * math.Pow(x[j], float64(deg))
				}
				want := 0.0
				if deg > 0 {
					want = float64(deg) * math.Pow(x[i], float64(deg-1))
				}
				if math.Abs(got-want) > 1e-10 {
					t.Errorf("np=%d deg=%d node=%d: D f = %v, want %v", np, deg, i, got, want)
				}
			}
		}
	}
}

func TestDerivativeMatrixRowSumZero(t *testing.T) {
	// Differentiating a constant gives zero: rows sum to 0.
	d := DerivativeMatrix(6)
	for i, row := range d {
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if math.Abs(sum) > 1e-12 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
}

func TestLegendrePKnownValues(t *testing.T) {
	// P_2(x) = (3x^2-1)/2, P_2'(x) = 3x.
	p, dp := LegendreP(2, 0.5)
	if math.Abs(p-(-0.125)) > 1e-15 || math.Abs(dp-1.5) > 1e-15 {
		t.Fatalf("P_2(0.5) = %v, %v", p, dp)
	}
	// P_n(1) = 1 for all n.
	for n := 0; n <= 10; n++ {
		p, _ := LegendreP(n, 1)
		if math.Abs(p-1) > 1e-13 {
			t.Fatalf("P_%d(1) = %v", n, p)
		}
	}
}

func TestGLLPanicsOnBadNp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("np=1 did not panic")
		}
	}()
	GLL(1)
}
