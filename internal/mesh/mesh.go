package mesh

import (
	"fmt"
	"math"
	"sort"
)

// NodeRef locates one element-local copy of a global node.
type NodeRef struct {
	Elem int // element id
	Idx  int // local node index, j*np+i
}

// Mesh is the assembled cubed-sphere spectral-element grid.
type Mesh struct {
	Ne int // elements along each cube-face edge
	Np int // GLL nodes along each element edge (CAM-SE uses 4)

	Xi        []float64   // GLL nodes on [-1,1]
	Wt        []float64   // GLL weights
	Deriv     [][]float64 // GLL differentiation matrix
	DerivFlat []float64   // Deriv flattened row-major for LDM staging

	Elements []*Element

	NNodes    int         // count of globally unique GLL nodes
	NodeElems [][]NodeRef // for each global node, every (element, local index) copy
}

// NElems returns the total element count, 6*ne*ne.
func (m *Mesh) NElems() int { return len(m.Elements) }

// quantKey quantizes a sphere position for exact node matching across
// faces. Equiangular GLL nodes on shared cube edges coincide to machine
// precision; 1e-9 radians of slack absorbs rounding while staying far
// below any inter-node distance (the finest supported grid, ne=4096 with
// np=4, keeps nodes > 1e-4 radians apart).
type quantKey struct{ x, y, z int64 }

func quantize(p Vec3) quantKey {
	const s = 1e9
	return quantKey{int64(math.Round(p[0] * s)), int64(math.Round(p[1] * s)), int64(math.Round(p[2] * s))}
}

// New builds the full cubed-sphere mesh with ne x ne elements per face
// and np x np GLL nodes per element, assembles the global node numbering,
// DSS weights, and element connectivity.
func New(ne, np int) *Mesh {
	if ne < 1 {
		panic(fmt.Sprintf("mesh: ne must be positive, got %d", ne))
	}
	if np < 2 {
		panic(fmt.Sprintf("mesh: np must be >= 2, got %d", np))
	}
	xi, wt := GLL(np)
	m := &Mesh{
		Ne: ne, Np: np,
		Xi: xi, Wt: wt,
		Deriv:    DerivativeMatrix(np),
		Elements: make([]*Element, 0, NFaces*ne*ne),
	}
	m.DerivFlat = make([]float64, np*np)
	for i := 0; i < np; i++ {
		copy(m.DerivFlat[i*np:(i+1)*np], m.Deriv[i])
	}
	id := 0
	for f := 0; f < NFaces; f++ {
		for fj := 0; fj < ne; fj++ {
			for fi := 0; fi < ne; fi++ {
				m.Elements = append(m.Elements, buildElement(id, f, fi, fj, ne, xi, wt))
				id++
			}
		}
	}
	m.assembleNodes()
	m.assembleConnectivity()
	return m
}

// assembleNodes assigns global node ids by geometric position and
// computes the DSS averaging weights.
func (m *Mesh) assembleNodes() {
	np := m.Np
	nodeOf := make(map[quantKey]int)
	for _, e := range m.Elements {
		for k := 0; k < np*np; k++ {
			key := quantize(e.Pos[k])
			gid, ok := nodeOf[key]
			if !ok {
				gid = len(m.NodeElems)
				nodeOf[key] = gid
				m.NodeElems = append(m.NodeElems, nil)
			}
			e.GlobalNode[k] = gid
			m.NodeElems[gid] = append(m.NodeElems[gid], NodeRef{Elem: e.ID, Idx: k})
		}
	}
	m.NNodes = len(m.NodeElems)

	// Assembled nodal weight = sum of SphereMP over every element copy;
	// DSSW is each copy's share, so DSS(field) = sum DSSW*field over copies.
	for _, refs := range m.NodeElems {
		total := 0.0
		for _, r := range refs {
			total += m.Elements[r.Elem].SphereMP[r.Idx]
		}
		for _, r := range refs {
			e := m.Elements[r.Elem]
			e.DSSW[r.Idx] = e.SphereMP[r.Idx] / total
		}
	}
}

// assembleConnectivity derives edge and node-sharing neighbour lists from
// the global node numbering. Two elements are edge neighbours when they
// share np nodes (a full GLL edge), and share neighbours when they share
// at least one (corners join 3 or 4 elements on the cubed sphere).
func (m *Mesh) assembleConnectivity() {
	shared := make(map[[2]int]int) // (low id, high id) -> shared node count
	for _, refs := range m.NodeElems {
		for a := 0; a < len(refs); a++ {
			for b := a + 1; b < len(refs); b++ {
				i, j := refs[a].Elem, refs[b].Elem
				if i == j {
					continue // an element never shares a node with itself
				}
				if i > j {
					i, j = j, i
				}
				shared[[2]int{i, j}]++
			}
		}
	}
	for pair, count := range shared {
		a, b := m.Elements[pair[0]], m.Elements[pair[1]]
		a.ShareNeighbors = append(a.ShareNeighbors, b.ID)
		b.ShareNeighbors = append(b.ShareNeighbors, a.ID)
		if count >= m.Np {
			a.EdgeNeighbors = append(a.EdgeNeighbors, b.ID)
			b.EdgeNeighbors = append(b.EdgeNeighbors, a.ID)
		}
	}
	for _, e := range m.Elements {
		sort.Ints(e.EdgeNeighbors)
		sort.Ints(e.ShareNeighbors)
	}
}

// DSS applies direct stiffness summation to a per-element nodal scalar
// field laid out as field[elem][node]: every shared node is replaced by
// the SphereMP-weighted average of its element copies, making the field
// C0-continuous. This is the serial whole-mesh reference; the
// distributed version lives in internal/halo.
func (m *Mesh) DSS(field [][]float64) {
	for _, refs := range m.NodeElems {
		if len(refs) == 1 {
			continue
		}
		avg := 0.0
		for _, r := range refs {
			avg += m.Elements[r.Elem].DSSW[r.Idx] * field[r.Elem][r.Idx]
		}
		for _, r := range refs {
			field[r.Elem][r.Idx] = avg
		}
	}
}

// Integrate computes the global integral of a per-element nodal field
// using the assembled GLL quadrature (unit sphere; multiply by
// EarthRadius^2 for physical area integrals). Shared nodes are counted
// once via the DSSW partition of unity.
func (m *Mesh) Integrate(field [][]float64) float64 {
	total := 0.0
	for ei, e := range m.Elements {
		for k, w := range e.SphereMP {
			total += w * field[ei][k]
		}
	}
	return total
}

// SurfaceArea returns the quadrature measure of the whole grid, which
// must equal 4*pi on the unit sphere — the standard mesh sanity check.
func (m *Mesh) SurfaceArea() float64 {
	total := 0.0
	for _, e := range m.Elements {
		for _, w := range e.SphereMP {
			total += w
		}
	}
	return total
}
