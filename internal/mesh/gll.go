// Package mesh builds the equiangular gnomonic cubed-sphere
// spectral-element grid used by CAM-SE (the HOMME dynamical core): 6 cube
// faces of ne x ne elements, each element carrying an np x np tensor grid
// of Gauss-Lobatto-Legendre (GLL) nodes, with metric terms, a global
// unique-node numbering for direct stiffness summation, edge
// connectivity, and a space-filling-curve partitioner.
package mesh

import (
	"fmt"
	"math"
)

// LegendreP evaluates the Legendre polynomial P_n and its first
// derivative at x using the three-term recurrence.
func LegendreP(n int, x float64) (p, dp float64) {
	if n == 0 {
		return 1, 0
	}
	pm1, p := 1.0, x // P_0, P_1
	for k := 2; k <= n; k++ {
		pm1, p = p, ((2*float64(k)-1)*x*p-(float64(k)-1)*pm1)/float64(k)
	}
	// Derivative identity: (x^2-1)/n * P_n' = x P_n - P_{n-1}.
	if x == 1 || x == -1 {
		dp = math.Pow(x, float64(n-1)) * float64(n) * float64(n+1) / 2
	} else {
		dp = float64(n) * (x*p - pm1) / (x*x - 1)
	}
	return p, dp
}

// GLL returns the np Gauss-Lobatto-Legendre nodes on [-1,1] (ascending)
// and the matching quadrature weights. GLL quadrature with np points is
// exact for polynomials of degree 2*np-3 and is the basis of CAM-SE's
// diagonal mass matrix. np must be at least 2.
func GLL(np int) (nodes, weights []float64) {
	if np < 2 {
		panic(fmt.Sprintf("mesh: GLL needs np >= 2, got %d", np))
	}
	n := np - 1 // polynomial degree
	nodes = make([]float64, np)
	weights = make([]float64, np)
	nodes[0], nodes[n] = -1, 1
	// Interior nodes are the roots of P_n'. Newton from Chebyshev-like
	// initial guesses; P_n'' from the Legendre ODE.
	for i := 1; i < n; i++ {
		x := -math.Cos(math.Pi * float64(i) / float64(n))
		for it := 0; it < 100; it++ {
			p, dp := LegendreP(n, x)
			ddp := (2*x*dp - float64(n)*float64(n+1)*p) / (1 - x*x)
			dx := dp / ddp
			x -= dx
			if math.Abs(dx) < 1e-15 {
				break
			}
		}
		nodes[i] = x
	}
	for i := 0; i <= n; i++ {
		p, _ := LegendreP(n, nodes[i])
		weights[i] = 2 / (float64(n) * float64(n+1) * p * p)
	}
	return nodes, weights
}

// DerivativeMatrix returns the np x np GLL differentiation matrix D with
// D[i][j] = L_j'(x_i), so that (D f)_i approximates df/dxi at node i for
// f given by its nodal values. This is the matrix at the heart of every
// spectral-element operator in the dycore.
func DerivativeMatrix(np int) [][]float64 {
	nodes, _ := GLL(np)
	n := np - 1
	d := make([][]float64, np)
	for i := range d {
		d[i] = make([]float64, np)
	}
	pn := make([]float64, np)
	for i, x := range nodes {
		pn[i], _ = LegendreP(n, x)
	}
	for i := 0; i < np; i++ {
		for j := 0; j < np; j++ {
			switch {
			case i == j && i == 0:
				d[i][j] = -float64(n) * float64(n+1) / 4
			case i == j && i == n:
				d[i][j] = float64(n) * float64(n+1) / 4
			case i == j:
				d[i][j] = 0
			default:
				d[i][j] = pn[i] / (pn[j] * (nodes[i] - nodes[j]))
			}
		}
	}
	return d
}
