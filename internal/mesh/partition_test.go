package mesh

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPartitionBalance(t *testing.T) {
	m := New(4, 4) // 96 elements
	for _, nranks := range []int{1, 2, 3, 5, 6, 7, 16, 96} {
		rankOf, err := m.Partition(nranks)
		if err != nil {
			t.Fatalf("nranks=%d: %v", nranks, err)
		}
		counts := make([]int, nranks)
		for _, r := range rankOf {
			counts[r]++
		}
		min, max := counts[0], counts[0]
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max-min > 1 {
			t.Errorf("nranks=%d: imbalance %d..%d", nranks, min, max)
		}
		if min == 0 {
			t.Errorf("nranks=%d: empty rank", nranks)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	m := New(1, 4) // 6 elements
	if _, err := m.Partition(0); err == nil {
		t.Error("nranks=0 accepted")
	}
	if _, err := m.Partition(7); err == nil {
		t.Error("more ranks than elements accepted")
	}
}

func TestSFCOrderIsPermutation(t *testing.T) {
	m := New(4, 4)
	order := m.SFCOrder()
	seen := make([]bool, m.NElems())
	for _, id := range order {
		if id < 0 || id >= m.NElems() || seen[id] {
			t.Fatalf("SFC order is not a permutation")
		}
		seen[id] = true
	}
}

func TestSFCLocality(t *testing.T) {
	// A contiguous SFC chunk must have far fewer cut edges than a
	// round-robin assignment — that's the entire point of the curve.
	m := New(8, 4) // 384 elements
	const nranks = 16
	sfc, err := m.Partition(nranks)
	if err != nil {
		t.Fatal(err)
	}
	rr := make([]int, m.NElems())
	for i := range rr {
		rr[i] = i % nranks
	}
	sfcCut, rrCut := m.CutEdges(sfc), m.CutEdges(rr)
	if sfcCut >= rrCut {
		t.Fatalf("SFC cut %d >= round-robin cut %d", sfcCut, rrCut)
	}
	// SFC boundary should be within a small factor of the perfect-square
	// perimeter bound: nranks patches of 24 elements, perimeter ~4*sqrt(24).
	perfect := nranks * 4 * int(math.Sqrt(24))
	if sfcCut > 2*perfect {
		t.Errorf("SFC cut %d far above perimeter bound %d", sfcCut, perfect)
	}
}

func TestRankElemsInvertsPartition(t *testing.T) {
	m := New(4, 4)
	rankOf, _ := m.Partition(7)
	lists := RankElems(rankOf, 7)
	total := 0
	for r, l := range lists {
		total += len(l)
		for _, id := range l {
			if rankOf[id] != r {
				t.Fatalf("element %d listed under wrong rank", id)
			}
		}
	}
	if total != m.NElems() {
		t.Fatalf("rank lists cover %d of %d elements", total, m.NElems())
	}
}

func TestMortonInterleaveProperty(t *testing.T) {
	// Morton code must be strictly monotone in each coordinate when the
	// other is fixed (it's a bijection on 16-bit pairs).
	f := func(x, y uint16) bool {
		m := mortonInterleave(uint32(x), uint32(y))
		return mortonInterleave(uint32(x)|0, uint32(y)) == m &&
			(x == 0xFFFF || mortonInterleave(uint32(x)+1, uint32(y)) > m) &&
			(y == 0xFFFF || mortonInterleave(uint32(x), uint32(y)+1) > m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShrinkPartition(t *testing.T) {
	m := New(4, 4)
	const nranks = 5
	rankOf, err := m.Partition(nranks)
	if err != nil {
		t.Fatal(err)
	}
	for dead := 0; dead < nranks; dead++ {
		got, err := m.ShrinkPartition(rankOf, dead, nranks)
		if err != nil {
			t.Fatalf("dead=%d: %v", dead, err)
		}
		counts := make([]int, nranks-1)
		for id, r := range got {
			if r < 0 || r >= nranks-1 {
				t.Fatalf("dead=%d: element %d assigned to rank %d of %d", dead, id, r, nranks-1)
			}
			counts[r]++
			// Survivors keep their elements (renumbered).
			if old := rankOf[id]; old != dead {
				want := old
				if old > dead {
					want--
				}
				if r != want {
					t.Fatalf("dead=%d: survivor element %d moved from %d to %d", dead, id, old, r)
				}
			}
		}
		for r, n := range counts {
			if n == 0 {
				t.Fatalf("dead=%d: rank %d left empty", dead, r)
			}
		}
		// A contiguous SFC partition stays contiguous: walking the curve
		// must visit each rank's elements in one run.
		seen := map[int]bool{}
		prev := -1
		for _, id := range m.SFCOrder() {
			r := got[id]
			if r != prev {
				if seen[r] {
					t.Fatalf("dead=%d: rank %d's elements not contiguous on the SFC", dead, r)
				}
				seen[r] = true
				prev = r
			}
		}
	}
	if _, err := m.ShrinkPartition(rankOf, 9, nranks); err == nil {
		t.Fatal("out-of-range dead rank accepted")
	}
	one, _ := m.Partition(1)
	if _, err := m.ShrinkPartition(one, 0, 1); err == nil {
		t.Fatal("shrinking a 1-rank partition accepted")
	}
}
