package mesh

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPartitionBalance(t *testing.T) {
	m := New(4, 4) // 96 elements
	for _, nranks := range []int{1, 2, 3, 5, 6, 7, 16, 96} {
		rankOf, err := m.Partition(nranks)
		if err != nil {
			t.Fatalf("nranks=%d: %v", nranks, err)
		}
		counts := make([]int, nranks)
		for _, r := range rankOf {
			counts[r]++
		}
		min, max := counts[0], counts[0]
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max-min > 1 {
			t.Errorf("nranks=%d: imbalance %d..%d", nranks, min, max)
		}
		if min == 0 {
			t.Errorf("nranks=%d: empty rank", nranks)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	m := New(1, 4) // 6 elements
	if _, err := m.Partition(0); err == nil {
		t.Error("nranks=0 accepted")
	}
	if _, err := m.Partition(7); err == nil {
		t.Error("more ranks than elements accepted")
	}
}

func TestSFCOrderIsPermutation(t *testing.T) {
	m := New(4, 4)
	order := m.SFCOrder()
	seen := make([]bool, m.NElems())
	for _, id := range order {
		if id < 0 || id >= m.NElems() || seen[id] {
			t.Fatalf("SFC order is not a permutation")
		}
		seen[id] = true
	}
}

func TestSFCLocality(t *testing.T) {
	// A contiguous SFC chunk must have far fewer cut edges than a
	// round-robin assignment — that's the entire point of the curve.
	m := New(8, 4) // 384 elements
	const nranks = 16
	sfc, err := m.Partition(nranks)
	if err != nil {
		t.Fatal(err)
	}
	rr := make([]int, m.NElems())
	for i := range rr {
		rr[i] = i % nranks
	}
	sfcCut, rrCut := m.CutEdges(sfc), m.CutEdges(rr)
	if sfcCut >= rrCut {
		t.Fatalf("SFC cut %d >= round-robin cut %d", sfcCut, rrCut)
	}
	// SFC boundary should be within a small factor of the perfect-square
	// perimeter bound: nranks patches of 24 elements, perimeter ~4*sqrt(24).
	perfect := nranks * 4 * int(math.Sqrt(24))
	if sfcCut > 2*perfect {
		t.Errorf("SFC cut %d far above perimeter bound %d", sfcCut, perfect)
	}
}

func TestRankElemsInvertsPartition(t *testing.T) {
	m := New(4, 4)
	rankOf, _ := m.Partition(7)
	lists := RankElems(rankOf, 7)
	total := 0
	for r, l := range lists {
		total += len(l)
		for _, id := range l {
			if rankOf[id] != r {
				t.Fatalf("element %d listed under wrong rank", id)
			}
		}
	}
	if total != m.NElems() {
		t.Fatalf("rank lists cover %d of %d elements", total, m.NElems())
	}
}

func TestMortonInterleaveProperty(t *testing.T) {
	// Morton code must be strictly monotone in each coordinate when the
	// other is fixed (it's a bijection on 16-bit pairs).
	f := func(x, y uint16) bool {
		m := mortonInterleave(uint32(x), uint32(y))
		return mortonInterleave(uint32(x)|0, uint32(y)) == m &&
			(x == 0xFFFF || mortonInterleave(uint32(x)+1, uint32(y)) > m) &&
			(y == 0xFFFF || mortonInterleave(uint32(x), uint32(y)+1) > m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShrinkPartition(t *testing.T) {
	m := New(4, 4)
	const nranks = 5
	rankOf, err := m.Partition(nranks)
	if err != nil {
		t.Fatal(err)
	}
	for dead := 0; dead < nranks; dead++ {
		got, err := m.ShrinkPartition(rankOf, dead, nranks)
		if err != nil {
			t.Fatalf("dead=%d: %v", dead, err)
		}
		counts := make([]int, nranks-1)
		for id, r := range got {
			if r < 0 || r >= nranks-1 {
				t.Fatalf("dead=%d: element %d assigned to rank %d of %d", dead, id, r, nranks-1)
			}
			counts[r]++
			// Survivors keep their elements (renumbered).
			if old := rankOf[id]; old != dead {
				want := old
				if old > dead {
					want--
				}
				if r != want {
					t.Fatalf("dead=%d: survivor element %d moved from %d to %d", dead, id, old, r)
				}
			}
		}
		for r, n := range counts {
			if n == 0 {
				t.Fatalf("dead=%d: rank %d left empty", dead, r)
			}
		}
		// A contiguous SFC partition stays contiguous: walking the curve
		// must visit each rank's elements in one run.
		seen := map[int]bool{}
		prev := -1
		for _, id := range m.SFCOrder() {
			r := got[id]
			if r != prev {
				if seen[r] {
					t.Fatalf("dead=%d: rank %d's elements not contiguous on the SFC", dead, r)
				}
				seen[r] = true
				prev = r
			}
		}
	}
	if _, err := m.ShrinkPartition(rankOf, 9, nranks); err == nil {
		t.Fatal("out-of-range dead rank accepted")
	}
	one, _ := m.Partition(1)
	if _, err := m.ShrinkPartition(one, 0, 1); err == nil {
		t.Fatal("shrinking a 1-rank partition accepted")
	}
}

// TestHilbertOrderIsPermutation: every element appears exactly once.
func TestHilbertOrderIsPermutation(t *testing.T) {
	for _, ne := range []int{2, 3, 4, 5, 8} {
		m := New(ne, 4)
		order := m.HilbertOrder()
		seen := make([]bool, m.NElems())
		for _, id := range order {
			if id < 0 || id >= m.NElems() || seen[id] {
				t.Fatalf("ne=%d: bad or repeated id %d", ne, id)
			}
			seen[id] = true
		}
	}
}

// TestHilbertOrderAdjacency pins the property Morton lacks: for
// power-of-two face grids, consecutive elements along the Hilbert curve
// within a face are edge-adjacent — no diagonal quadrant jumps.
func TestHilbertOrderAdjacency(t *testing.T) {
	for _, ne := range []int{2, 4, 8} {
		m := New(ne, 4)
		order := m.HilbertOrder()
		for i := 1; i < len(order); i++ {
			a, b := m.Elements[order[i-1]], m.Elements[order[i]]
			if a.Face != b.Face {
				continue // face seams are allowed to jump
			}
			di, dj := a.FI-b.FI, a.FJ-b.FJ
			if di*di+dj*dj != 1 {
				t.Fatalf("ne=%d: Hilbert jump within face %d: (%d,%d)->(%d,%d)",
					ne, a.Face, a.FI, a.FJ, b.FI, b.FJ)
			}
		}
	}
}

// TestPartitionNeverWorseThanMorton is the partition-locality property:
// because Partition chops both candidate curves and keeps the smaller
// edge cut, its cut can never exceed the historical Morton-only chop,
// at any mesh size or rank count.
func TestPartitionNeverWorseThanMorton(t *testing.T) {
	for _, ne := range []int{2, 3, 4, 5, 6, 8} {
		m := New(ne, 4)
		for _, nranks := range []int{2, 3, 4, 5, 7, 8, 12, 16} {
			if nranks > m.NElems() {
				continue
			}
			rankOf, err := m.Partition(nranks)
			if err != nil {
				t.Fatal(err)
			}
			morton := chopOrder(m.SFCOrder(), nranks)
			if got, ref := m.CutEdges(rankOf), m.CutEdges(morton); got > ref {
				t.Errorf("ne=%d nranks=%d: Partition cut %d > Morton chop cut %d",
					ne, nranks, got, ref)
			}
		}
	}
}

// TestHilbertUsuallyBeatsMorton documents that the upgrade is real, not
// vacuous: summed over a representative sweep, the Hilbert chop's edge
// cut is strictly below Morton's.
func TestHilbertUsuallyBeatsMorton(t *testing.T) {
	totalH, totalM := 0, 0
	for _, ne := range []int{4, 6, 8} {
		m := New(ne, 4)
		for _, nranks := range []int{4, 6, 8, 12} {
			totalH += m.CutEdges(chopOrder(m.HilbertOrder(), nranks))
			totalM += m.CutEdges(chopOrder(m.SFCOrder(), nranks))
		}
	}
	if totalH >= totalM {
		t.Errorf("Hilbert total cut %d not below Morton total cut %d over the sweep", totalH, totalM)
	}
}

// TestShrinkPartitionFollowsOwningCurve: shrinking a Hilbert-chopped
// partition must keep it contiguous along the Hilbert curve (one run of
// curve positions per rank), and likewise for a Morton chop.
func TestShrinkPartitionFollowsOwningCurve(t *testing.T) {
	m := New(4, 4)
	const nranks = 6
	for _, tc := range []struct {
		name  string
		order []int
	}{
		{"hilbert", m.HilbertOrder()},
		{"morton", m.SFCOrder()},
	} {
		rankOf := chopOrder(tc.order, nranks)
		for dead := 0; dead < nranks; dead++ {
			out, err := m.ShrinkPartition(rankOf, dead, nranks)
			if err != nil {
				t.Fatal(err)
			}
			if b := orderBreaks(tc.order, out); b != nranks-2 {
				t.Errorf("%s dead=%d: %d breaks along owning curve, want %d (contiguous)",
					tc.name, dead, b, nranks-2)
			}
		}
	}
}
