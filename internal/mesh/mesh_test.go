package mesh

import (
	"math"
	"testing"
)

func TestSurfaceAreaIs4Pi(t *testing.T) {
	// GLL quadrature of the curved metric converges spectrally to 4*pi;
	// assert monotone convergence and a tight error at ne=8.
	var prev float64 = math.Inf(1)
	for _, ne := range []int{1, 2, 4, 8} {
		m := New(ne, 4)
		rel := math.Abs(m.SurfaceArea()-4*math.Pi) / (4 * math.Pi)
		if rel > prev {
			t.Errorf("ne=%d: area error %g did not shrink (prev %g)", ne, rel, prev)
		}
		prev = rel
	}
	if prev > 1e-8 {
		t.Errorf("ne=8: area error %g, want < 1e-8", prev)
	}
}

func TestElementCount(t *testing.T) {
	// Table 2 of the paper: ne64 has 64*64*6 = 24,576 elements.
	m := New(4, 4)
	if m.NElems() != 96 {
		t.Fatalf("ne=4: %d elements, want 96", m.NElems())
	}
	// Verify the Table 2 arithmetic without building huge meshes.
	for _, tc := range []struct{ ne, want int }{
		{64, 24576}, {256, 393216}, {512, 1572864},
		{1024, 6291456}, {2048, 25165824}, {4096, 100663296},
	} {
		if got := tc.ne * tc.ne * 6; got != tc.want {
			t.Errorf("ne=%d: %d elements, want %d (paper Table 2)", tc.ne, got, tc.want)
		}
	}
}

func TestGlobalNodeCount(t *testing.T) {
	// A continuous quad grid on a closed surface: V = F*(np-1)^2 + E*(np-2)...
	// easier from Euler's formula: for the cubed sphere with N=6*ne^2
	// quads, unique GLL nodes = N*(np-1)^2 + 2.
	for _, ne := range []int{1, 2, 3, 4} {
		for _, np := range []int{2, 4} {
			m := New(ne, np)
			want := 6*ne*ne*(np-1)*(np-1) + 2
			if m.NNodes != want {
				t.Errorf("ne=%d np=%d: %d global nodes, want %d", ne, np, m.NNodes, want)
			}
		}
	}
}

func TestNodeMultiplicity(t *testing.T) {
	m := New(4, 4)
	// Every global node is shared by 1 (interior), 2 (edge), 3 (cube
	// corner) or 4 (regular corner) elements.
	counts := map[int]int{}
	for _, refs := range m.NodeElems {
		counts[len(refs)]++
	}
	for mult := range counts {
		if mult < 1 || mult > 4 {
			t.Fatalf("impossible node multiplicity %d", mult)
		}
	}
	// Exactly 8 cube corners have multiplicity 3.
	if counts[3] != 8 {
		t.Errorf("multiplicity-3 nodes = %d, want 8 (cube corners)", counts[3])
	}
}

func TestEdgeNeighborCount(t *testing.T) {
	// On a closed quad mesh every element has exactly 4 edge neighbours.
	m := New(4, 4)
	for _, e := range m.Elements {
		if len(e.EdgeNeighbors) != 4 {
			t.Fatalf("element %d (face %d, %d,%d) has %d edge neighbours",
				e.ID, e.Face, e.FI, e.FJ, len(e.EdgeNeighbors))
		}
	}
}

func TestShareNeighborCount(t *testing.T) {
	// Away from cube corners each element touches 8 others; elements at
	// a cube corner touch 7 (three faces meet, no diagonal partner).
	m := New(4, 4)
	for _, e := range m.Elements {
		n := len(e.ShareNeighbors)
		if n != 8 && n != 7 {
			t.Fatalf("element %d has %d share neighbours", e.ID, n)
		}
	}
}

func TestDSSWPartitionOfUnity(t *testing.T) {
	m := New(3, 4)
	for _, refs := range m.NodeElems {
		sum := 0.0
		for _, r := range refs {
			sum += m.Elements[r.Elem].DSSW[r.Idx]
		}
		if math.Abs(sum-1) > 1e-13 {
			t.Fatalf("DSSW sums to %v on a node", sum)
		}
	}
}

func TestDSSMakesFieldContinuous(t *testing.T) {
	m := New(3, 4)
	np := m.Np
	// A discontinuous per-element field: element id as a constant.
	field := make([][]float64, m.NElems())
	for i := range field {
		field[i] = make([]float64, np*np)
		for k := range field[i] {
			field[i][k] = float64(i)
		}
	}
	m.DSS(field)
	for gid, refs := range m.NodeElems {
		first := field[refs[0].Elem][refs[0].Idx]
		for _, r := range refs[1:] {
			if math.Abs(field[r.Elem][r.Idx]-first) > 1e-12 {
				t.Fatalf("node %d not continuous after DSS", gid)
			}
		}
	}
}

func TestDSSIdempotent(t *testing.T) {
	m := New(2, 4)
	np := m.Np
	field := make([][]float64, m.NElems())
	for i := range field {
		field[i] = make([]float64, np*np)
		for k := range field[i] {
			field[i][k] = math.Sin(float64(i*np*np + k))
		}
	}
	m.DSS(field)
	snapshot := make([][]float64, len(field))
	for i := range field {
		snapshot[i] = append([]float64(nil), field[i]...)
	}
	m.DSS(field)
	for i := range field {
		for k := range field[i] {
			diff := math.Abs(field[i][k] - snapshot[i][k])
			// DSSW sums to 1 only to rounding, so re-averaging equal
			// copies drifts by at most a few ULP.
			if diff > 1e-14*(1+math.Abs(snapshot[i][k])) {
				t.Fatalf("DSS not idempotent at elem %d node %d: drift %g", i, k, diff)
			}
		}
	}
}

func TestDSSPreservesIntegral(t *testing.T) {
	// SphereMP-weighted DSS is an L2 projection onto continuous fields:
	// the global integral must be preserved exactly.
	m := New(3, 4)
	np := m.Np
	field := make([][]float64, m.NElems())
	for i := range field {
		field[i] = make([]float64, np*np)
		for k := range field[i] {
			field[i][k] = math.Cos(float64(3*i)) * float64(k%np)
		}
	}
	before := m.Integrate(field)
	m.DSS(field)
	after := m.Integrate(field)
	if math.Abs(before-after) > 1e-12*math.Abs(before) {
		t.Fatalf("DSS changed the integral: %v -> %v", before, after)
	}
}

func TestIntegrateConstant(t *testing.T) {
	m := New(2, 4)
	np := m.Np
	field := make([][]float64, m.NElems())
	for i := range field {
		field[i] = make([]float64, np*np)
		for k := range field[i] {
			field[i][k] = 2.5
		}
	}
	got := m.Integrate(field)
	want := 2.5 * 4 * math.Pi
	// Quadrature of the curved metric at ne=2 is accurate to ~3e-6
	// relative (see TestSurfaceAreaIs4Pi); the integral of a constant
	// inherits exactly that error.
	if math.Abs(got-want) > 3e-6*want {
		t.Fatalf("integral = %v, want %v", got, want)
	}
}

func TestLonLatRanges(t *testing.T) {
	m := New(2, 4)
	for _, e := range m.Elements {
		for k := range e.Lon {
			if e.Lon[k] < 0 || e.Lon[k] >= 2*math.Pi+1e-12 {
				t.Fatalf("lon out of range: %v", e.Lon[k])
			}
			if e.Lat[k] < -math.Pi/2-1e-12 || e.Lat[k] > math.Pi/2+1e-12 {
				t.Fatalf("lat out of range: %v", e.Lat[k])
			}
			// Positions must be on the unit sphere.
			if math.Abs(e.Pos[k].Norm()-1) > 1e-13 {
				t.Fatalf("node off the unit sphere")
			}
		}
	}
}

func TestVectorTransformRoundTrip(t *testing.T) {
	// D * Dinv = identity at every node.
	m := New(2, 4)
	for _, e := range m.Elements {
		for k := range e.D {
			d, di := e.D[k], e.Dinv[k]
			id := [2][2]float64{
				{d[0][0]*di[0][0] + d[0][1]*di[1][0], d[0][0]*di[0][1] + d[0][1]*di[1][1]},
				{d[1][0]*di[0][0] + d[1][1]*di[1][0], d[1][0]*di[0][1] + d[1][1]*di[1][1]},
			}
			if math.Abs(id[0][0]-1) > 1e-12 || math.Abs(id[1][1]-1) > 1e-12 ||
				math.Abs(id[0][1]) > 1e-12 || math.Abs(id[1][0]) > 1e-12 {
				t.Fatalf("D*Dinv != I at elem %d node %d: %v", e.ID, k, id)
			}
		}
	}
}

func TestMetdetMatchesDDeterminant(t *testing.T) {
	m := New(2, 4)
	for _, e := range m.Elements {
		for k := range e.D {
			d := e.D[k]
			det := math.Abs(d[0][0]*d[1][1] - d[0][1]*d[1][0])
			if math.Abs(det-e.Metdet[k]) > 1e-13 {
				t.Fatalf("metdet mismatch at elem %d node %d", e.ID, k)
			}
		}
	}
}

func TestGreatCircleDist(t *testing.T) {
	a := Vec3{1, 0, 0}
	b := Vec3{0, 1, 0}
	if d := GreatCircleDist(a, b); math.Abs(d-math.Pi/2) > 1e-14 {
		t.Fatalf("quarter circle = %v", d)
	}
	if d := GreatCircleDist(a, a); d != 0 {
		t.Fatalf("zero distance = %v", d)
	}
	c := Vec3{-1, 0, 0}
	if d := GreatCircleDist(a, c); math.Abs(d-math.Pi) > 1e-14 {
		t.Fatalf("antipodal = %v", d)
	}
}

func TestSphericalBasisOrthonormal(t *testing.T) {
	pts := []Vec3{
		{1, 0, 0}, {0, 1, 0},
		Vec3{1, 1, 1}.Normalize(), Vec3{-0.3, 0.2, 0.9}.Normalize(),
	}
	for _, p := range pts {
		e, n := SphericalBasis(p)
		if math.Abs(e.Norm()-1) > 1e-13 || math.Abs(n.Norm()-1) > 1e-13 {
			t.Fatalf("basis not unit at %v", p)
		}
		if math.Abs(e.Dot(n)) > 1e-13 {
			t.Fatalf("basis not orthogonal at %v", p)
		}
		if math.Abs(e.Dot(p)) > 1e-13 || math.Abs(n.Dot(p)) > 1e-13 {
			t.Fatalf("basis not tangent at %v", p)
		}
	}
}

func TestNe30RealGridBuilds(t *testing.T) {
	// The paper's ne30 (100 km CAM grid) is buildable in-process: 5,400
	// elements, 48,602 unique GLL nodes — the figure quoted in §8.2's
	// validation setup ("horizontal resolution NE30 (48,602 grid
	// points)").
	if testing.Short() {
		t.Skip("ne30 build takes a moment")
	}
	m := New(30, 4)
	if m.NElems() != 5400 {
		t.Fatalf("ne30 elements = %d, want 5400", m.NElems())
	}
	if m.NNodes != 48602 {
		t.Fatalf("ne30 unique nodes = %d, paper says 48,602", m.NNodes)
	}
	if rel := math.Abs(m.SurfaceArea()-4*math.Pi) / (4 * math.Pi); rel > 1e-10 {
		t.Errorf("ne30 area error %g", rel)
	}
}

func TestSingleElementUltraHighRes(t *testing.T) {
	// One element of the 750-m ne4096 grid: geometry and metric terms
	// must be healthy at that scale (element width ~0.38 mrad, node
	// spacing ~750 m on the sphere).
	e := SingleElement(4096, 4, 0, 2048, 2048)
	if e.DAlpha != (math.Pi/2)/4096 {
		t.Fatalf("element width %g", e.DAlpha)
	}
	for k := range e.Metdet {
		if e.Metdet[k] <= 0 || math.IsNaN(e.Metdet[k]) {
			t.Fatalf("bad metdet at node %d: %g", k, e.Metdet[k])
		}
		if math.Abs(e.Pos[k].Norm()-1) > 1e-12 {
			t.Fatalf("node off sphere")
		}
	}
	// Node spacing in meters: between the two middle GLL nodes.
	d := GreatCircleDist(e.Pos[5], e.Pos[6]) * 6.376e6
	if d < 300 || d > 1500 {
		t.Errorf("ne4096 interior node spacing %v m, expected the 750-m class", d)
	}
	// D*Dinv = I even at extreme aspect.
	di, dm := e.Dinv[5], e.D[5]
	if math.Abs(dm[0][0]*di[0][0]+dm[0][1]*di[1][0]-1) > 1e-10 {
		t.Error("metric inverse degraded at ne4096")
	}
}

func TestSingleElementMatchesAssembledMesh(t *testing.T) {
	// SingleElement must agree exactly with the assembled mesh's element.
	m := New(4, 4)
	for _, ref := range []*Element{m.Elements[0], m.Elements[37], m.Elements[95]} {
		e := SingleElement(4, 4, ref.Face, ref.FI, ref.FJ)
		for k := range ref.Metdet {
			if e.Metdet[k] != ref.Metdet[k] || e.Pos[k] != ref.Pos[k] {
				t.Fatalf("SingleElement mismatch at elem %d node %d", ref.ID, k)
			}
		}
	}
}
