package mesh

import "math"

// Element is one spectral element of the cubed-sphere grid: an np x np
// tensor grid of GLL nodes on one face patch, with all metric terms
// precomputed. Node (i,j) is stored at index j*np+i (i fastest, along
// alpha).
type Element struct {
	ID     int // global element id, 0..6*ne*ne-1
	Face   int // cube face, 0..5
	FI, FJ int // element position within the face, 0..ne-1
	Alpha0 float64
	Beta0  float64
	DAlpha float64 // element width in alpha and beta (equal)

	Pos    []Vec3    // unit-sphere node positions
	Lon    []float64 // node longitudes
	Lat    []float64 // node latitudes
	Metdet []float64 // sqrt(det g), unit-sphere covariant metric

	// D maps contravariant cube-face vector components (v1, v2) to
	// spherical (zonal, meridional) components; Dinv is its inverse.
	// Covariant components map to spherical with transpose(Dinv).
	D    [][2][2]float64
	Dinv [][2][2]float64

	// DFlat and DinvFlat are the same matrices flattened row-major
	// (node*4 + 2*row + col) so they can be DMA'd into a CPE's LDM as
	// plain float64 buffers by the Sunway execution backends.
	DFlat    []float64
	DinvFlat []float64

	// SphereMP is the per-node quadrature weight contributed by this
	// element: w_i * w_j * (dalpha/2) * (dbeta/2) * metdet. Summing it
	// over all elements sharing a node gives the true nodal integration
	// weight of the continuous GLL grid (HOMME's DSS'd spheremp).
	SphereMP []float64

	// DSSW is SphereMP divided by the assembled nodal weight: the
	// weighted-average coefficients used by direct stiffness summation.
	DSSW []float64

	GlobalNode []int // global unique-node id of each local node

	EdgeNeighbors  []int // element ids sharing a full edge (np nodes)
	ShareNeighbors []int // element ids sharing at least one node
}

// NodeIndex returns the storage index of GLL node (i,j).
func (e *Element) NodeIndex(i, j, np int) int { return j*np + i }

// buildElement computes geometry and metric terms for element (face,fi,fj)
// of an ne x ne face using GLL nodes xi and weights wt.
func buildElement(id, face, fi, fj, ne int, xi, wt []float64) *Element {
	np := len(xi)
	dA := (math.Pi / 2) / float64(ne)
	e := &Element{
		ID: id, Face: face, FI: fi, FJ: fj,
		Alpha0: -math.Pi/4 + float64(fi)*dA,
		Beta0:  -math.Pi/4 + float64(fj)*dA,
		DAlpha: dA,
	}
	n := np * np
	e.Pos = make([]Vec3, n)
	e.Lon = make([]float64, n)
	e.Lat = make([]float64, n)
	e.Metdet = make([]float64, n)
	e.D = make([][2][2]float64, n)
	e.Dinv = make([][2][2]float64, n)
	e.DFlat = make([]float64, 4*n)
	e.DinvFlat = make([]float64, 4*n)
	e.SphereMP = make([]float64, n)
	e.DSSW = make([]float64, n)
	e.GlobalNode = make([]int, n)

	for j := 0; j < np; j++ {
		beta := e.Beta0 + (xi[j]+1)/2*dA
		for i := 0; i < np; i++ {
			alpha := e.Alpha0 + (xi[i]+1)/2*dA
			k := j*np + i
			p := CubeToSphere(face, alpha, beta)
			e.Pos[k] = p
			e.Lon[k], e.Lat[k] = LonLat(p)

			tA, tB := SphereTangents(face, alpha, beta)
			east, north := SphericalBasis(p)
			d := [2][2]float64{
				{tA.Dot(east), tB.Dot(east)},
				{tA.Dot(north), tB.Dot(north)},
			}
			det := d[0][0]*d[1][1] - d[0][1]*d[1][0]
			e.D[k] = d
			e.Dinv[k] = [2][2]float64{
				{d[1][1] / det, -d[0][1] / det},
				{-d[1][0] / det, d[0][0] / det},
			}
			for r := 0; r < 2; r++ {
				for c := 0; c < 2; c++ {
					e.DFlat[4*k+2*r+c] = e.D[k][r][c]
					e.DinvFlat[4*k+2*r+c] = e.Dinv[k][r][c]
				}
			}
			// metdet = |det D|: the covariant metric is g = D^T D since
			// the spherical basis is orthonormal.
			e.Metdet[k] = math.Abs(det)
			e.SphereMP[k] = wt[i] * wt[j] * (dA / 2) * (dA / 2) * e.Metdet[k]
		}
	}
	return e
}

// SingleElement builds one element of an ne-resolution grid without
// assembling the whole mesh — the only way to touch the geometry of the
// paper's ne4096 (750 m) configuration in-process, whose full grid has
// 100,663,296 elements. Global node ids and neighbour lists are not
// populated (they require assembly); all metric terms are.
func SingleElement(ne, np, face, fi, fj int) *Element {
	if fi < 0 || fi >= ne || fj < 0 || fj >= ne || face < 0 || face >= NFaces {
		panic("mesh: SingleElement coordinates out of range")
	}
	xi, wt := GLL(np)
	return buildElement(face*ne*ne+fj*ne+fi, face, fi, fj, ne, xi, wt)
}
