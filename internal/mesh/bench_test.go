package mesh

import "testing"

func BenchmarkMeshBuildNe8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		New(8, 4)
	}
}

func BenchmarkDSS(b *testing.B) {
	m := New(8, 4)
	field := make([][]float64, m.NElems())
	for i := range field {
		field[i] = make([]float64, 16)
		for k := range field[i] {
			field[i][k] = float64(i + k)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.DSS(field)
	}
}

func BenchmarkPartition(b *testing.B) {
	m := New(16, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Partition(64); err != nil {
			b.Fatal(err)
		}
	}
}
