package mesh

import (
	"fmt"
	"sort"
)

// mortonInterleave interleaves the low 16 bits of x and y, giving the
// Z-order (Morton) index used to order elements within a cube face.
func mortonInterleave(x, y uint32) uint64 {
	spread := func(v uint32) uint64 {
		z := uint64(v) & 0xFFFF
		z = (z | z<<16) & 0x0000FFFF0000FFFF
		z = (z | z<<8) & 0x00FF00FF00FF00FF
		z = (z | z<<4) & 0x0F0F0F0F0F0F0F0F
		z = (z | z<<2) & 0x3333333333333333
		z = (z | z<<1) & 0x5555555555555555
		return z
	}
	return spread(x) | spread(y)<<1
}

// SFCOrder returns element ids ordered along a space-filling curve:
// face-major, Z-order within each face. HOMME partitions elements along
// a space-filling curve for exactly the reason we do — contiguous chunks
// of the curve are compact patches with short boundaries, which keeps
// halo-exchange volume near the surface-to-volume lower bound.
func (m *Mesh) SFCOrder() []int {
	type keyed struct {
		key uint64
		id  int
	}
	ks := make([]keyed, m.NElems())
	for i, e := range m.Elements {
		ks[i] = keyed{
			key: uint64(e.Face)<<40 | mortonInterleave(uint32(e.FI), uint32(e.FJ)),
			id:  e.ID,
		}
	}
	sort.Slice(ks, func(a, b int) bool { return ks[a].key < ks[b].key })
	order := make([]int, len(ks))
	for i, k := range ks {
		order[i] = k.id
	}
	return order
}

// Partition assigns every element to one of nranks ranks by chopping the
// space-filling curve into contiguous chunks whose sizes differ by at
// most one element. It returns rankOf[elemID] = rank.
func (m *Mesh) Partition(nranks int) ([]int, error) {
	n := m.NElems()
	if nranks < 1 {
		return nil, fmt.Errorf("mesh: partition into %d ranks", nranks)
	}
	if nranks > n {
		return nil, fmt.Errorf("mesh: %d ranks exceed %d elements", nranks, n)
	}
	order := m.SFCOrder()
	rankOf := make([]int, n)
	base, extra := n/nranks, n%nranks
	pos := 0
	for r := 0; r < nranks; r++ {
		size := base
		if r < extra {
			size++
		}
		for k := 0; k < size; k++ {
			rankOf[order[pos]] = r
			pos++
		}
	}
	return rankOf, nil
}

// ShrinkPartition redistributes a dead rank's elements over the
// survivors and renumbers ranks above it down by one, returning the new
// rankOf over nranks-1 ranks. Each orphaned element goes to the new
// rank of its nearest preceding survivor-owned element along the
// space-filling curve (the following one for a dead rank at the head of
// the curve), so a contiguous SFC partition stays contiguous and the
// extra halo surface of the degraded layout stays small.
func (m *Mesh) ShrinkPartition(rankOf []int, dead, nranks int) ([]int, error) {
	if len(rankOf) != m.NElems() {
		return nil, fmt.Errorf("mesh: rankOf covers %d of %d elements", len(rankOf), m.NElems())
	}
	if dead < 0 || dead >= nranks {
		return nil, fmt.Errorf("mesh: shrink rank %d of %d", dead, nranks)
	}
	if nranks < 2 {
		return nil, fmt.Errorf("mesh: cannot shrink a %d-rank partition", nranks)
	}
	renum := func(r int) int {
		if r > dead {
			return r - 1
		}
		return r
	}
	order := m.SFCOrder()
	out := make([]int, len(rankOf))
	for i := range out {
		out[i] = -1
	}
	last := -1
	for _, id := range order {
		if rankOf[id] != dead {
			last = renum(rankOf[id])
		}
		out[id] = last
	}
	// Orphans at the head of the curve inherit the first survivor after
	// them.
	first := -1
	for _, id := range order {
		if rankOf[id] != dead {
			first = renum(rankOf[id])
			break
		}
	}
	if first < 0 {
		return nil, fmt.Errorf("mesh: shrink would leave no survivor elements")
	}
	for _, id := range order {
		if out[id] < 0 {
			out[id] = first
		}
	}
	return out, nil
}

// RankElems inverts a partition: for each rank, the sorted list of its
// element ids.
func RankElems(rankOf []int, nranks int) [][]int {
	out := make([][]int, nranks)
	for id, r := range rankOf {
		out[r] = append(out[r], id)
	}
	for _, l := range out {
		sort.Ints(l)
	}
	return out
}

// CutEdges counts element edges crossing rank boundaries under a
// partition — the communication volume proxy used by the machine model
// and by partition-quality tests.
func (m *Mesh) CutEdges(rankOf []int) int {
	cut := 0
	for _, e := range m.Elements {
		for _, nb := range e.EdgeNeighbors {
			if nb > e.ID && rankOf[nb] != rankOf[e.ID] {
				cut++
			}
		}
	}
	return cut
}
