package mesh

import (
	"fmt"
	"sort"
)

// mortonInterleave interleaves the low 16 bits of x and y, giving the
// Z-order (Morton) index used to order elements within a cube face.
func mortonInterleave(x, y uint32) uint64 {
	spread := func(v uint32) uint64 {
		z := uint64(v) & 0xFFFF
		z = (z | z<<16) & 0x0000FFFF0000FFFF
		z = (z | z<<8) & 0x00FF00FF00FF00FF
		z = (z | z<<4) & 0x0F0F0F0F0F0F0F0F
		z = (z | z<<2) & 0x3333333333333333
		z = (z | z<<1) & 0x5555555555555555
		return z
	}
	return spread(x) | spread(y)<<1
}

// hilbertIndex maps (x,y) in an n×n grid (n a power of two) to its
// distance along the Hilbert curve. Unlike Morton order, consecutive
// Hilbert indices are always edge-adjacent cells, so contiguous chunks
// of the curve have no long-range jumps and their boundaries — the halo
// cut — hug the surface-to-volume lower bound tighter.
func hilbertIndex(n, x, y uint32) uint64 {
	var d uint64
	for s := n / 2; s > 0; s /= 2 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate the quadrant so the sub-curve enters/exits correctly.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}

// orderByKey returns element ids sorted by an arbitrary curve key.
func (m *Mesh) orderByKey(key func(e *Element) uint64) []int {
	type keyed struct {
		key uint64
		id  int
	}
	ks := make([]keyed, m.NElems())
	for i, e := range m.Elements {
		ks[i] = keyed{key: key(e), id: e.ID}
	}
	sort.Slice(ks, func(a, b int) bool { return ks[a].key < ks[b].key })
	order := make([]int, len(ks))
	for i, k := range ks {
		order[i] = k.id
	}
	return order
}

// SFCOrder returns element ids ordered along a space-filling curve:
// face-major, Z-order (Morton) within each face. HOMME partitions
// elements along a space-filling curve for exactly the reason we do —
// contiguous chunks of the curve are compact patches with short
// boundaries, which keeps halo-exchange volume near the
// surface-to-volume lower bound.
func (m *Mesh) SFCOrder() []int {
	return m.orderByKey(func(e *Element) uint64 {
		return uint64(e.Face)<<40 | mortonInterleave(uint32(e.FI), uint32(e.FJ))
	})
}

// HilbertOrder returns element ids face-major, Hilbert-ordered within
// each face. The Hilbert curve never jumps: successive elements share an
// edge, so curve chunks are more compact than Morton's (whose quadrant
// seams produce long diagonal jumps) and the resulting halo cut is
// usually smaller.
func (m *Mesh) HilbertOrder() []int {
	// Smallest power of two covering the ne×ne face grid.
	pow2 := uint32(1)
	for int(pow2) < m.Ne {
		pow2 *= 2
	}
	return m.orderByKey(func(e *Element) uint64 {
		return uint64(e.Face)<<40 | hilbertIndex(pow2, uint32(e.FI), uint32(e.FJ))
	})
}

// partitionOrders lists the candidate element orderings a partition may
// be chopped along, best-first on ties.
func (m *Mesh) partitionOrders() [][]int {
	return [][]int{m.HilbertOrder(), m.SFCOrder()}
}

// chopOrder cuts an element ordering into nranks contiguous chunks whose
// sizes differ by at most one, returning rankOf[elemID] = rank.
func chopOrder(order []int, nranks int) []int {
	n := len(order)
	rankOf := make([]int, n)
	base, extra := n/nranks, n%nranks
	pos := 0
	for r := 0; r < nranks; r++ {
		size := base
		if r < extra {
			size++
		}
		for k := 0; k < size; k++ {
			rankOf[order[pos]] = r
			pos++
		}
	}
	return rankOf
}

// Partition assigns every element to one of nranks ranks by chopping a
// space-filling curve into contiguous chunks whose sizes differ by at
// most one element, and returns rankOf[elemID] = rank. Both candidate
// curves (Hilbert and Morton) are chopped and the one with the smaller
// edge cut wins, so by construction the chosen layout's halo cut never
// exceeds the historical Morton chop. Which curve wins only moves
// elements between ranks — trajectories are partition-invariant bit for
// bit thanks to the canonical per-copy DSS and canonical mass fixer.
func (m *Mesh) Partition(nranks int) ([]int, error) {
	n := m.NElems()
	if nranks < 1 {
		return nil, fmt.Errorf("mesh: partition into %d ranks", nranks)
	}
	if nranks > n {
		return nil, fmt.Errorf("mesh: %d ranks exceed %d elements", nranks, n)
	}
	var best []int
	bestCut := -1
	for _, order := range m.partitionOrders() {
		rankOf := chopOrder(order, nranks)
		if cut := m.CutEdges(rankOf); best == nil || cut < bestCut {
			best, bestCut = rankOf, cut
		}
	}
	return best, nil
}

// orderBreaks counts rank-change points walking rankOf along an element
// ordering — zero extra breaks beyond nranks-1 means the partition is a
// contiguous chop of that ordering.
func orderBreaks(order, rankOf []int) int {
	breaks := 0
	for i := 1; i < len(order); i++ {
		if rankOf[order[i]] != rankOf[order[i-1]] {
			breaks++
		}
	}
	return breaks
}

// ShrinkPartition redistributes a dead rank's elements over the
// survivors and renumbers ranks above it down by one, returning the new
// rankOf over nranks-1 ranks. The walk follows whichever candidate curve
// the partition is most contiguous under (fewest rank-change points), so
// a Hilbert chop shrinks along the Hilbert curve and a Morton chop along
// Morton. Each orphaned element goes to the new rank of its nearest
// preceding survivor-owned element along that curve (the following one
// for a dead rank at the head), so a contiguous partition stays
// contiguous and the extra halo surface of the degraded layout stays
// small.
func (m *Mesh) ShrinkPartition(rankOf []int, dead, nranks int) ([]int, error) {
	if len(rankOf) != m.NElems() {
		return nil, fmt.Errorf("mesh: rankOf covers %d of %d elements", len(rankOf), m.NElems())
	}
	if dead < 0 || dead >= nranks {
		return nil, fmt.Errorf("mesh: shrink rank %d of %d", dead, nranks)
	}
	if nranks < 2 {
		return nil, fmt.Errorf("mesh: cannot shrink a %d-rank partition", nranks)
	}
	renum := func(r int) int {
		if r > dead {
			return r - 1
		}
		return r
	}
	var order []int
	bestBreaks := -1
	for _, cand := range m.partitionOrders() {
		if b := orderBreaks(cand, rankOf); order == nil || b < bestBreaks {
			order, bestBreaks = cand, b
		}
	}
	out := make([]int, len(rankOf))
	for i := range out {
		out[i] = -1
	}
	last := -1
	for _, id := range order {
		if rankOf[id] != dead {
			last = renum(rankOf[id])
		}
		out[id] = last
	}
	// Orphans at the head of the curve inherit the first survivor after
	// them.
	first := -1
	for _, id := range order {
		if rankOf[id] != dead {
			first = renum(rankOf[id])
			break
		}
	}
	if first < 0 {
		return nil, fmt.Errorf("mesh: shrink would leave no survivor elements")
	}
	for _, id := range order {
		if out[id] < 0 {
			out[id] = first
		}
	}
	return out, nil
}

// RankElems inverts a partition: for each rank, the sorted list of its
// element ids.
func RankElems(rankOf []int, nranks int) [][]int {
	out := make([][]int, nranks)
	for id, r := range rankOf {
		out[r] = append(out[r], id)
	}
	for _, l := range out {
		sort.Ints(l)
	}
	return out
}

// CutEdges counts element edges crossing rank boundaries under a
// partition — the communication volume proxy used by the machine model
// and by partition-quality tests.
func (m *Mesh) CutEdges(rankOf []int) int {
	cut := 0
	for _, e := range m.Elements {
		for _, nb := range e.EdgeNeighbors {
			if nb > e.ID && rankOf[nb] != rankOf[e.ID] {
				cut++
			}
		}
	}
	return cut
}
