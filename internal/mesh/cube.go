package mesh

import "math"

// NFaces is the number of cube faces.
const NFaces = 6

// Vec3 is a point or direction in R^3.
type Vec3 [3]float64

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a[0] + b[0], a[1] + b[1], a[2] + b[2]} }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a[0] - b[0], a[1] - b[1], a[2] - b[2]} }

// Scale returns s * a.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{s * a[0], s * a[1], s * a[2]} }

// Dot returns the inner product.
func (a Vec3) Dot(b Vec3) float64 { return a[0]*b[0] + a[1]*b[1] + a[2]*b[2] }

// Cross returns the cross product a x b.
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{
		a[1]*b[2] - a[2]*b[1],
		a[2]*b[0] - a[0]*b[2],
		a[0]*b[1] - a[1]*b[0],
	}
}

// Norm returns |a|.
func (a Vec3) Norm() float64 { return math.Sqrt(a.Dot(a)) }

// Normalize returns a / |a|.
func (a Vec3) Normalize() Vec3 { return a.Scale(1 / a.Norm()) }

// faceFrame defines the gnomonic frame of one cube face: the point on
// the cube is q = O + X*EX + Y*EY with X = tan(alpha), Y = tan(beta),
// alpha, beta in [-pi/4, pi/4], then projected radially onto the sphere.
type faceFrame struct {
	O, EX, EY Vec3
}

// faceFrames lists the six faces: four equatorial faces in longitude
// order, then the north and south polar caps — the standard cubed-sphere
// layout. Connectivity between faces is discovered geometrically (by
// matching global node positions), so only orthonormality matters here.
var faceFrames = [NFaces]faceFrame{
	{O: Vec3{1, 0, 0}, EX: Vec3{0, 1, 0}, EY: Vec3{0, 0, 1}},   // face 0: lon 0
	{O: Vec3{0, 1, 0}, EX: Vec3{-1, 0, 0}, EY: Vec3{0, 0, 1}},  // face 1: lon 90E
	{O: Vec3{-1, 0, 0}, EX: Vec3{0, -1, 0}, EY: Vec3{0, 0, 1}}, // face 2: lon 180
	{O: Vec3{0, -1, 0}, EX: Vec3{1, 0, 0}, EY: Vec3{0, 0, 1}},  // face 3: lon 90W
	{O: Vec3{0, 0, 1}, EX: Vec3{0, 1, 0}, EY: Vec3{-1, 0, 0}},  // face 4: north
	{O: Vec3{0, 0, -1}, EX: Vec3{0, 1, 0}, EY: Vec3{1, 0, 0}},  // face 5: south
}

// CubeToSphere maps equiangular face coordinates (alpha, beta) on the
// given face to a unit-sphere position.
func CubeToSphere(face int, alpha, beta float64) Vec3 {
	f := faceFrames[face]
	x, y := math.Tan(alpha), math.Tan(beta)
	q := f.O.Add(f.EX.Scale(x)).Add(f.EY.Scale(y))
	return q.Normalize()
}

// SphereTangents returns the tangent vectors t_alpha = dp/dalpha and
// t_beta = dp/dbeta of the equiangular map at (alpha, beta), computed
// analytically. These define the covariant basis from which all metric
// terms derive.
func SphereTangents(face int, alpha, beta float64) (tAlpha, tBeta Vec3) {
	f := faceFrames[face]
	x, y := math.Tan(alpha), math.Tan(beta)
	q := f.O.Add(f.EX.Scale(x)).Add(f.EY.Scale(y))
	r := q.Norm()
	// dq/dalpha = sec^2(alpha) * EX; projection derivative of q/|q|:
	// d(q/|q|)/ds = q'/|q| - q (q.q')/|q|^3.
	dxa := 1 + x*x // sec^2(alpha)
	dyb := 1 + y*y
	qa := f.EX.Scale(dxa)
	qb := f.EY.Scale(dyb)
	tAlpha = qa.Scale(1 / r).Sub(q.Scale(q.Dot(qa) / (r * r * r)))
	tBeta = qb.Scale(1 / r).Sub(q.Scale(q.Dot(qb) / (r * r * r)))
	return tAlpha, tBeta
}

// LonLat converts a unit-sphere position to longitude in [0, 2*pi) and
// latitude in [-pi/2, pi/2].
func LonLat(p Vec3) (lon, lat float64) {
	lon = math.Atan2(p[1], p[0])
	if lon < 0 {
		lon += 2 * math.Pi
	}
	lat = math.Asin(math.Max(-1, math.Min(1, p[2])))
	return lon, lat
}

// SphericalBasis returns the local zonal (east) and meridional (north)
// unit vectors at a point on the sphere.
func SphericalBasis(p Vec3) (east, north Vec3) {
	lon, lat := LonLat(p)
	sl, cl := math.Sincos(lon)
	sp, cp := math.Sincos(lat)
	east = Vec3{-sl, cl, 0}
	north = Vec3{-sp * cl, -sp * sl, cp}
	return east, north
}

// GreatCircleDist returns the central angle between two unit vectors,
// numerically robust for both small and near-antipodal separations.
func GreatCircleDist(a, b Vec3) float64 {
	return math.Atan2(a.Cross(b).Norm(), a.Dot(b))
}
