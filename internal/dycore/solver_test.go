package dycore

import (
	"math"
	"testing"

	"swcam/internal/mesh"
)

func smallSolver(t *testing.T, ne, nlev, qsize int) *Solver {
	t.Helper()
	cfg := DefaultConfig(ne)
	cfg.Nlev = nlev
	cfg.Qsize = qsize
	s, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRestStateStaysAtRest(t *testing.T) {
	// An isothermal rest atmosphere with flat topography is a discrete
	// steady state: all horizontal gradients vanish exactly in the GLL
	// basis, so winds stay identically zero through full steps.
	s := smallSolver(t, 2, 8, 1)
	st := s.NewState()
	s.InitRest(st, 280)
	for i := 0; i < 3; i++ {
		s.Step(st)
	}
	if w := s.MaxWind(st); w > 1e-10 {
		t.Errorf("rest state developed wind %g m/s", w)
	}
	// Temperature must remain isothermal.
	for ei := range st.T {
		for _, v := range st.T[ei] {
			if math.Abs(v-280) > 1e-8 {
				t.Fatalf("rest state temperature drifted to %v", v)
			}
		}
	}
}

func TestDynamicsConservesMass(t *testing.T) {
	s := smallSolver(t, 4, 8, 0)
	st := s.NewState()
	s.InitBaroclinicWave(st)
	m0 := s.TotalMass(st)
	for i := 0; i < 5; i++ {
		s.Step(st)
	}
	m1 := s.TotalMass(st)
	if rel := math.Abs(m1-m0) / m0; rel > 1e-7 {
		t.Errorf("dry mass drifted by %g relative", rel)
	}
}

func TestBaroclinicRunStable(t *testing.T) {
	// A few hours of a baroclinic-wave run: winds bounded, dp positive,
	// temperatures physical.
	s := smallSolver(t, 4, 8, 1)
	st := s.NewState()
	s.InitBaroclinicWave(st)
	s.InitCosineBellTracer(st, 0, math.Pi/2, 0, 0.6)
	steps := 8
	for i := 0; i < steps; i++ {
		s.Step(st)
	}
	if w := s.MaxWind(st); w > 200 || math.IsNaN(w) {
		t.Fatalf("wind blew up: %g m/s", w)
	}
	if d := s.MinDP(st); d <= 0 {
		t.Fatalf("layer thickness went non-positive: %g", d)
	}
	for ei := range st.T {
		for _, v := range st.T[ei] {
			if v < 130 || v > 400 || math.IsNaN(v) {
				t.Fatalf("unphysical temperature %v", v)
			}
		}
	}
}

func TestTracerAdvectionConservesMass(t *testing.T) {
	s := smallSolver(t, 4, 6, 1)
	st := s.NewState()
	s.InitSolidBodyRotation(st, 280, 30, 0)
	s.InitCosineBellTracer(st, 0, math.Pi, 0, 0.8)
	q0 := s.TracerMass(st, 0)
	if q0 <= 0 {
		t.Fatal("tracer mass not positive after init")
	}
	for i := 0; i < 6; i++ {
		s.TracerStep(st)
	}
	q1 := s.TracerMass(st, 0)
	if rel := math.Abs(q1-q0) / q0; rel > 1e-6 {
		t.Errorf("tracer mass drifted by %g relative", rel)
	}
}

func TestTracerLimiterKeepsPositivity(t *testing.T) {
	s := smallSolver(t, 4, 6, 1)
	s.Cfg.Limiter = true
	st := s.NewState()
	s.InitSolidBodyRotation(st, 280, 40, math.Pi/4)
	s.InitCosineBellTracer(st, 0, math.Pi/2, 0.3, 0.5)
	for i := 0; i < 10; i++ {
		s.TracerStep(st)
	}
	for ei := range st.U {
		qdp := st.QdpAt(ei, 0)
		for _, v := range qdp {
			if v < -1e-12 {
				t.Fatalf("negative tracer mass %g with limiter on", v)
			}
		}
	}
}

func TestTracerAdvectionMovesBell(t *testing.T) {
	// Under solid-body rotation the bell's centre of mass must move
	// eastward at roughly the advecting speed.
	s := smallSolver(t, 6, 4, 1)
	st := s.NewState()
	const u0 = 50.0
	s.InitSolidBodyRotation(st, 280, u0, 0)
	s.InitCosineBellTracer(st, 0, math.Pi, 0, 0.5)

	centroidLon := func() float64 {
		npsq := s.Cfg.Np * s.Cfg.Np
		var sx, sy, wsum float64
		for ei, e := range s.Mesh.Elements {
			qdp := s.NewState().Qdp // placeholder to silence linters; replaced below
			_ = qdp
			q := st.QdpAt(ei, 0)
			for n := 0; n < npsq; n++ {
				w := 0.0
				for k := 0; k < s.Cfg.Nlev; k++ {
					w += q[k*npsq+n]
				}
				w *= e.SphereMP[n]
				sx += w * math.Cos(e.Lon[n])
				sy += w * math.Sin(e.Lon[n])
				wsum += w
			}
		}
		return math.Atan2(sy, sx)
	}
	lon0 := centroidLon()
	steps := 12
	for i := 0; i < steps; i++ {
		s.TracerStep(st)
	}
	lon1 := centroidLon()
	moved := lon1 - lon0
	for moved < -math.Pi {
		moved += 2 * math.Pi
	}
	want := u0 * s.Cfg.Dt * float64(steps) / Rearth // radians at the equator
	if moved < 0.3*want || moved > 2.0*want {
		t.Errorf("bell moved %g rad, expected ~%g rad eastward", moved, want)
	}
}

func TestHypervisDampsNoise(t *testing.T) {
	// Grid-scale noise in T must lose variance under the hyperviscous
	// update while a smooth large-scale field is nearly untouched.
	s := smallSolver(t, 4, 4, 0)
	st := s.NewState()
	s.InitRest(st, 280)
	npsq := s.Cfg.Np * s.Cfg.Np
	// Checkerboard noise at the GLL-node scale.
	for ei := range st.T {
		for k := 0; k < s.Cfg.Nlev; k++ {
			for n := 0; n < npsq; n++ {
				if (n+k)%2 == 0 {
					st.T[ei][k*npsq+n] += 1.0
				} else {
					st.T[ei][k*npsq+n] -= 1.0
				}
			}
		}
	}
	variance := func() float64 {
		tot := 0.0
		cnt := 0
		for ei := range st.T {
			for _, v := range st.T[ei] {
				d := v - 280
				tot += d * d
				cnt++
			}
		}
		return tot / float64(cnt)
	}
	v0 := variance()
	s.HypervisStep(st)
	v1 := variance()
	if v1 >= v0 {
		t.Errorf("hyperviscosity did not damp noise: %g -> %g", v0, v1)
	}
}

func TestRemapStepRestoresReferenceGrid(t *testing.T) {
	s := smallSolver(t, 2, 8, 1)
	st := s.NewState()
	s.InitBaroclinicWave(st)
	// Perturb dp away from the reference grid but keep columns positive.
	npsq := s.Cfg.Np * s.Cfg.Np
	for ei := range st.DP {
		for k := 0; k < s.Cfg.Nlev; k++ {
			for n := 0; n < npsq; n++ {
				st.DP[ei][k*npsq+n] *= 1 + 0.05*math.Sin(float64(k+n))
			}
		}
	}
	m0 := s.TotalMass(st)
	s.RemapStep(st)
	m1 := s.TotalMass(st)
	if rel := math.Abs(m1-m0) / m0; rel > 1e-10 {
		t.Errorf("remap changed total mass by %g", rel)
	}
	// Every column must now be exactly on the reference grid.
	ref := make([]float64, s.Cfg.Nlev)
	for ei := range st.DP {
		for n := 0; n < npsq; n++ {
			ps := PTop
			for k := 0; k < s.Cfg.Nlev; k++ {
				ps += st.DP[ei][k*npsq+n]
			}
			s.Hybrid.ReferenceDP(ps, ref)
			for k := 0; k < s.Cfg.Nlev; k++ {
				if math.Abs(st.DP[ei][k*npsq+n]-ref[k]) > 1e-8*ref[k] {
					t.Fatalf("column not on reference grid after remap")
				}
			}
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(4)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bads := []func(*Config){
		func(c *Config) { c.Ne = 0 },
		func(c *Config) { c.Np = 1 },
		func(c *Config) { c.Nlev = 1 },
		func(c *Config) { c.Qsize = -1 },
		func(c *Config) { c.Dt = 0 },
		func(c *Config) { c.RemapFreq = 0 },
		func(c *Config) { c.HypervisSubcycle = -1 },
	}
	for i, mod := range bads {
		c := DefaultConfig(4)
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestStateCloneAndDiff(t *testing.T) {
	s := smallSolver(t, 2, 4, 1)
	st := s.NewState()
	s.InitBaroclinicWave(st)
	cl := st.Clone()
	if d := st.MaxAbsDiff(cl); d != 0 {
		t.Fatalf("clone differs by %g", d)
	}
	cl.U[0][0] += 1.5
	if d := st.MaxAbsDiff(cl); d != 1.5 {
		t.Fatalf("MaxAbsDiff = %g, want 1.5", d)
	}
	st.CopyFrom(cl)
	if d := st.MaxAbsDiff(cl); d != 0 {
		t.Fatalf("CopyFrom left diff %g", d)
	}
}

func TestEnergyBoundedOverRun(t *testing.T) {
	s := smallSolver(t, 4, 8, 0)
	st := s.NewState()
	s.InitBaroclinicWave(st)
	e0 := s.TotalEnergy(st)
	for i := 0; i < 5; i++ {
		s.Step(st)
	}
	e1 := s.TotalEnergy(st)
	if rel := math.Abs(e1-e0) / e0; rel > 1e-3 {
		t.Errorf("total energy drifted by %g relative in 5 steps", rel)
	}
}

// Topography path: a mountain under a resting atmosphere exerts a
// pressure-gradient force through the hydrostatic Phis terms, spinning
// up a circulation concentrated near the mountain. Far away the
// atmosphere stays at rest.
func TestMountainForcesLocalCirculation(t *testing.T) {
	s := smallSolver(t, 4, 8, 0)
	st := s.NewState()
	s.InitRest(st, 280)
	const (
		lonC   = math.Pi
		radius = 0.35
	)
	s.AddMountain(st, lonC, 0, 2000, radius)
	mass0 := s.TotalMass(st)
	for i := 0; i < 3; i++ {
		s.Step(st)
	}
	if rel := math.Abs(s.TotalMass(st)-mass0) / mass0; rel > 1e-7 {
		t.Errorf("mountain run lost mass: %g", rel)
	}
	npsq := s.Cfg.Np * s.Cfg.Np
	var nearMax, farMax float64
	for ei, e := range s.Mesh.Elements {
		for n := 0; n < npsq; n++ {
			dLon := math.Abs(e.Lon[n] - lonC)
			if dLon > math.Pi {
				dLon = 2*math.Pi - dLon
			}
			d := math.Hypot(dLon*math.Cos(e.Lat[n]), e.Lat[n])
			for k := 0; k < s.Cfg.Nlev; k++ {
				w := math.Hypot(st.U[ei][k*npsq+n], st.V[ei][k*npsq+n])
				if d < 2*radius && w > nearMax {
					nearMax = w
				}
				if d > 6*radius && w > farMax {
					farMax = w
				}
			}
		}
	}
	if nearMax <= 0.01 {
		t.Errorf("mountain produced no circulation: %g m/s", nearMax)
	}
	if farMax > 0.3*nearMax {
		t.Errorf("response not localized: near %g, far %g m/s", nearMax, farMax)
	}
}

// Nair-Lauritzen reversing deformational flow: the winds deform the
// tracer into filaments through half the period, then exactly reverse,
// so at t=T the continuum solution equals the initial condition. The
// recovered bell measures the transport scheme's diffusion; mass must be
// conserved throughout.
func TestDeformationalFlowReturnsTracer(t *testing.T) {
	s := smallSolver(t, 6, 4, 1)
	st := s.NewState()
	s.InitRest(st, 280)
	s.InitCosineBellTracer(st, 0, math.Pi, math.Pi/6, 0.7)
	ref := st.Clone()
	q0 := s.TracerMass(st, 0)

	const (
		period = 12 * 3600.0
		kAmp   = 30.0
	)
	steps := int(period / s.Cfg.Dt)
	npsq := s.Cfg.Np * s.Cfg.Np
	for i := 0; i < steps; i++ {
		tm := (float64(i) + 0.5) * s.Cfg.Dt // midpoint winds for reversibility
		fac := math.Cos(math.Pi * tm / period)
		for ei, e := range s.Mesh.Elements {
			for n := 0; n < npsq; n++ {
				lon, lat := e.Lon[n], e.Lat[n]
				sl := math.Sin(lon)
				u := kAmp * sl * sl * math.Sin(2*lat) * fac
				v := kAmp * math.Sin(2*lon) * math.Cos(lat) * fac
				for k := 0; k < s.Cfg.Nlev; k++ {
					st.U[ei][k*npsq+n] = u
					st.V[ei][k*npsq+n] = v
				}
			}
		}
		s.TracerStep(st)
	}
	if rel := math.Abs(s.TracerMass(st, 0)-q0) / q0; rel > 1e-6 {
		t.Errorf("deformational flow lost tracer mass: %g", rel)
	}
	// Correlation with the initial bell: diffusion spreads it, but the
	// pattern must come back to roughly the right place.
	var dot, na, nb float64
	for ei := range st.Qdp {
		qa := ref.QdpAt(ei, 0)
		qb := st.QdpAt(ei, 0)
		for k := range qa {
			dot += qa[k] * qb[k]
			na += qa[k] * qa[k]
			nb += qb[k] * qb[k]
		}
	}
	corr := dot / math.Sqrt(na*nb)
	if corr < 0.80 {
		t.Errorf("tracer did not return: correlation %.3f with the initial bell", corr)
	}
}

// A functional touch of the paper's 750-m configuration: run the RHS
// kernel on a real ne4096 element (the full grid has 100M elements; one
// is enough to prove the numerics hold at that scale).
func TestRHSOnUltraHighResElement(t *testing.T) {
	e := mesh.SingleElement(4096, 4, 2, 100, 3000)
	const nlev = 16
	npsq := 16
	ws := NewWorkspace(4, nlev)
	rhs := NewRHS(4, nlev)
	deriv := mesh.DerivativeMatrix(4)
	derivFlat := make([]float64, 16)
	for i := 0; i < 4; i++ {
		copy(derivFlat[i*4:(i+1)*4], deriv[i])
	}
	h := NewHybridCoord(nlev)
	dpRef := make([]float64, nlev)
	h.ReferenceDP(P0, dpRef)
	u := make([]float64, nlev*npsq)
	v := make([]float64, nlev*npsq)
	tt := make([]float64, nlev*npsq)
	dp := make([]float64, nlev*npsq)
	phis := make([]float64, npsq)
	for k := 0; k < nlev; k++ {
		for n := 0; n < npsq; n++ {
			u[k*npsq+n] = 20
			tt[k*npsq+n] = 280
			dp[k*npsq+n] = dpRef[k]
		}
	}
	out := NewState(1, 4, nlev, 0)
	ComputeAndApplyRHSElem(e, derivFlat, ws, rhs,
		u, v, tt, dp, phis, u, v, tt, dp,
		out.U[0], out.V[0], out.T[0], out.DP[0], 1)
	for i := range out.T[0] {
		if math.IsNaN(out.T[0][i]) || math.IsNaN(out.U[0][i]) {
			t.Fatal("NaN in 750-m element RHS")
		}
	}
	// Uniform fields on a tiny element: tendencies must be tiny (metric
	// gradients are resolved, not amplified, at extreme resolution).
	for i := range rhs.Tt {
		if math.Abs(rhs.Tt[i]) > 1e-6 {
			t.Fatalf("spurious T tendency %g on uniform 750-m element", rhs.Tt[i])
		}
	}
}

func TestGravityWaveCFLAdvisory(t *testing.T) {
	// Default configurations must sit safely below the stability limit
	// at every paper resolution.
	for _, ne := range []int{4, 30, 120, 256} {
		cfg := DefaultConfig(ne)
		if cfl := cfg.GravityWaveCFL(); cfl > 0.8 {
			t.Errorf("ne=%d: default dt gives gravity-wave CFL %.2f", ne, cfl)
		}
	}
	// The advisory detects the unstable setting that blew up the early
	// vortex experiments (dt = 300*30/ne).
	cfg := DefaultConfig(4)
	cfg.Dt = 300 * 30 / 4.0
	if cfl := cfg.GravityWaveCFL(); cfl < 1 {
		t.Errorf("known-unstable dt reports CFL %.2f < 1", cfl)
	}
}
