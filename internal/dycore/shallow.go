package dycore

import (
	"fmt"
	"math"

	"swcam/internal/mesh"
)

// Shallow-water mode: the rotating shallow-water equations on the cubed
// sphere, built on the same spectral-element operators, DSS, and
// hyperviscosity as the primitive-equation core. HOMME ships the same
// mode, and the Williamson et al. (1992) test suite on it is the
// standard validation of a spectral-element dycore's operator stack —
// case 2 in particular is an exact steady solution, so any spurious
// tendency is pure numerical error.
//
//	dv/dt = -(f + zeta) k x v - grad(KE + g*(h + hs))
//	dh/dt = -div(v h)
//
// h is the fluid thickness, hs the bottom topography.

// SWState holds the shallow-water prognostic fields, one np*np slab per
// element.
type SWState struct {
	U, V, H [][]float64
}

// NewSWState allocates a zeroed state for nelem elements.
func NewSWState(nelem, npsq int) *SWState {
	alloc := func() [][]float64 {
		f := make([][]float64, nelem)
		for i := range f {
			f[i] = make([]float64, npsq)
		}
		return f
	}
	return &SWState{U: alloc(), V: alloc(), H: alloc()}
}

// Clone returns a deep copy.
func (s *SWState) Clone() *SWState {
	c := NewSWState(len(s.U), len(s.U[0]))
	for i := range s.U {
		copy(c.U[i], s.U[i])
		copy(c.V[i], s.V[i])
		copy(c.H[i], s.H[i])
	}
	return c
}

// SWSolver advances the shallow-water system.
type SWSolver struct {
	Mesh *mesh.Mesh
	Dt   float64
	Nu   float64     // hyperviscosity coefficient, m^4/s (0 disables)
	Hs   [][]float64 // bottom topography (geometric height, m)

	// scratch
	vort, ke, gx, gy []float64
	flxU, flxV, divH []float64
	lapU, lapV, lapH [][]float64
	s1, s2, s3, s4   []float64
	s5, s6           []float64
}

// NewSWSolver builds a solver on an ne-resolution mesh. dt must satisfy
// the gravity-wave CFL for the mean depth used.
func NewSWSolver(ne int, dt float64) (*SWSolver, error) {
	if ne < 1 || dt <= 0 {
		return nil, fmt.Errorf("dycore: bad shallow-water setup ne=%d dt=%g", ne, dt)
	}
	m := mesh.New(ne, 4)
	npsq := m.Np * m.Np
	s := &SWSolver{
		Mesh: m, Dt: dt,
		Nu:   HypervisCoefficient(ne),
		vort: make([]float64, npsq), ke: make([]float64, npsq),
		gx: make([]float64, npsq), gy: make([]float64, npsq),
		flxU: make([]float64, npsq), flxV: make([]float64, npsq),
		divH: make([]float64, npsq),
		s1:   make([]float64, npsq), s2: make([]float64, npsq),
		s3: make([]float64, npsq), s4: make([]float64, npsq),
		s5: make([]float64, npsq), s6: make([]float64, npsq),
	}
	s.Hs = make([][]float64, m.NElems())
	s.lapU = make([][]float64, m.NElems())
	s.lapV = make([][]float64, m.NElems())
	s.lapH = make([][]float64, m.NElems())
	for i := range s.Hs {
		s.Hs[i] = make([]float64, npsq)
		s.lapU[i] = make([]float64, npsq)
		s.lapV[i] = make([]float64, npsq)
		s.lapH[i] = make([]float64, npsq)
	}
	return s, nil
}

// NewState allocates a state for this solver's mesh.
func (s *SWSolver) NewState() *SWState {
	return NewSWState(s.Mesh.NElems(), s.Mesh.Np*s.Mesh.Np)
}

// dss makes the slab fields continuous.
func (s *SWSolver) dss(fields ...[][]float64) {
	for _, f := range fields {
		s.Mesh.DSS(f)
	}
}

// applyRHS computes out = base + dt * RHS(cur), then DSS.
func (s *SWSolver) applyRHS(cur, base, out *SWState, dt float64) {
	m := s.Mesh
	np := m.Np
	npsq := np * np
	for ei, e := range m.Elements {
		u, v, h := cur.U[ei], cur.V[ei], cur.H[ei]
		VorticitySlab(m.DerivFlat, e.DFlat, e.Metdet, e.DAlpha, np, u, v, s.vort, s.s1, s.s2)
		for n := 0; n < npsq; n++ {
			s.ke[n] = (u[n]*u[n]+v[n]*v[n])/2 + Gravit*(h[n]+s.Hs[ei][n])
		}
		GradientSlab(m.DerivFlat, e.DinvFlat, e.DAlpha, np, s.ke, s.gx, s.gy, s.s1, s.s2)
		for n := 0; n < npsq; n++ {
			s.flxU[n] = u[n] * h[n]
			s.flxV[n] = v[n] * h[n]
		}
		DivergenceSlab(m.DerivFlat, e.DinvFlat, e.Metdet, e.DAlpha, np, s.flxU, s.flxV, s.divH, s.s1, s.s2)
		for n := 0; n < npsq; n++ {
			f := 2 * Omega * math.Sin(e.Lat[n])
			absv := s.vort[n] + f
			out.U[ei][n] = base.U[ei][n] + dt*(absv*v[n]-s.gx[n])
			out.V[ei][n] = base.V[ei][n] + dt*(-absv*u[n]-s.gy[n])
			out.H[ei][n] = base.H[ei][n] + dt*(-s.divH[n])
		}
	}
	s.dss(out.U, out.V, out.H)
}

// hypervis applies one fourth-order dissipation pass with the
// proportional mass fixer (the strong-form Laplacian does not integrate
// to exactly zero; see the 3D solver).
func (s *SWSolver) hypervis(st *SWState) {
	if s.Nu == 0 {
		return
	}
	mass0 := s.TotalMass(st)
	m := s.Mesh
	np := m.Np
	npsq := np * np
	for ei, e := range m.Elements {
		VecLaplaceSlab(m.DerivFlat, e.DFlat, e.DinvFlat, e.Metdet, e.DAlpha, np,
			st.U[ei], st.V[ei], s.lapU[ei], s.lapV[ei], s.s1, s.s2, s.s3, s.s4, s.s5, s.s6)
		LaplaceSlab(m.DerivFlat, e.DinvFlat, e.Metdet, e.DAlpha, np,
			st.H[ei], s.lapH[ei], s.s1, s.s2, s.s3, s.s4)
	}
	s.dss(s.lapU, s.lapV, s.lapH)
	for ei, e := range m.Elements {
		VecLaplaceSlab(m.DerivFlat, e.DFlat, e.DinvFlat, e.Metdet, e.DAlpha, np,
			s.lapU[ei], s.lapV[ei], s.s5, s.s6, s.s1, s.s2, s.s3, s.s4, s.gx, s.gy)
		for n := 0; n < npsq; n++ {
			st.U[ei][n] -= s.Dt * s.Nu * s.s5[n]
			st.V[ei][n] -= s.Dt * s.Nu * s.s6[n]
		}
		LaplaceSlab(m.DerivFlat, e.DinvFlat, e.Metdet, e.DAlpha, np,
			s.lapH[ei], s.s1, s.s2, s.s3, s.s4, s.gx)
		for n := 0; n < npsq; n++ {
			st.H[ei][n] -= s.Dt * s.Nu * s.s1[n]
		}
	}
	s.dss(st.U, st.V, st.H)
	if mass1 := s.TotalMass(st); mass1 > 0 {
		scale := mass0 / mass1
		for ei := range st.H {
			for n := range st.H[ei] {
				st.H[ei][n] *= scale
			}
		}
	}
}

// Step advances one SSP-RK2 step with hyperviscosity.
func (s *SWSolver) Step(st *SWState) {
	s1 := st.Clone()
	s.applyRHS(st, st, s1, s.Dt)
	s2 := s1.Clone()
	s.applyRHS(s1, s1, s2, s.Dt)
	for ei := range st.U {
		SSPRK2Combine(st.U[ei], s2.U[ei], st.U[ei])
		SSPRK2Combine(st.V[ei], s2.V[ei], st.V[ei])
		SSPRK2Combine(st.H[ei], s2.H[ei], st.H[ei])
	}
	s.hypervis(st)
}

// TotalMass returns the global integral of h.
func (s *SWSolver) TotalMass(st *SWState) float64 { return s.Mesh.Integrate(st.H) }

// TotalEnergy returns the shallow-water energy integral
// (h*KE + g*h^2/2 + g*h*hs).
func (s *SWSolver) TotalEnergy(st *SWState) float64 {
	m := s.Mesh
	npsq := m.Np * m.Np
	total := 0.0
	for ei, e := range m.Elements {
		for n := 0; n < npsq; n++ {
			h := st.H[ei][n]
			ke := (st.U[ei][n]*st.U[ei][n] + st.V[ei][n]*st.V[ei][n]) / 2
			total += e.SphereMP[n] * (h*ke + Gravit*h*h/2 + Gravit*h*s.Hs[ei][n])
		}
	}
	return total
}

// InitWilliamson2 sets test case 2 of Williamson et al. (1992): steady
// solid-body zonal geostrophic flow,
//
//	u = u0 cos(lat)
//	g h = g h0 - (a*Omega*u0 + u0^2/2) sin^2(lat)
//
// an exact steady solution of the continuous equations — the discrete
// tendency is pure numerical error.
func (s *SWSolver) InitWilliamson2(st *SWState, u0, h0 float64) {
	npsq := s.Mesh.Np * s.Mesh.Np
	for ei, e := range s.Mesh.Elements {
		for n := 0; n < npsq; n++ {
			lat := e.Lat[n]
			sl := math.Sin(lat)
			st.U[ei][n] = u0 * math.Cos(lat)
			st.V[ei][n] = 0
			st.H[ei][n] = h0 - (Rearth*Omega*u0+u0*u0/2)*sl*sl/Gravit
		}
	}
}

// InitRossbyHaurwitz sets the wavenumber-4 Rossby-Haurwitz wave of
// Williamson test case 6 — a large-amplitude rotating wave pattern that
// translates eastward while (in the continuum) preserving its shape.
func (s *SWSolver) InitRossbyHaurwitz(st *SWState) {
	const (
		omg = 7.848e-6 // wave angular parameters, 1/s
		kk  = 7.848e-6
		rr  = 4.0 // wavenumber
		h0  = 8000.0
	)
	a := Rearth
	npsq := s.Mesh.Np * s.Mesh.Np
	for ei, e := range s.Mesh.Elements {
		for n := 0; n < npsq; n++ {
			lon, lat := e.Lon[n], e.Lat[n]
			cl := math.Cos(lat)
			sl := math.Sin(lat)
			clR := math.Pow(cl, rr)
			st.U[ei][n] = a*omg*cl + a*kk*clR/cl*(rr*sl*sl-cl*cl)*math.Cos(rr*lon)
			st.V[ei][n] = -a * kk * rr * clR / cl * sl * math.Sin(rr*lon)

			// Geopotential from the standard A, B, C integrals.
			c2 := cl * cl
			aTerm := omg/2*(2*Omega+omg)*c2 +
				kk*kk/4*math.Pow(c2, rr)*((rr+1)*c2+(2*rr*rr-rr-2)-2*rr*rr/c2)
			bTerm := 2 * (Omega + omg) * kk / ((rr + 1) * (rr + 2)) * math.Pow(cl, rr) *
				((rr*rr + 2*rr + 2) - (rr+1)*(rr+1)*c2)
			cTerm := kk * kk / 4 * math.Pow(c2, rr) * ((rr+1)*c2 - (rr + 2))
			gh := Gravit*h0 + a*a*(aTerm+bTerm*math.Cos(rr*lon)+cTerm*math.Cos(2*rr*lon))
			st.H[ei][n] = gh / Gravit
		}
	}
}

// TotalEnstrophy returns the potential-enstrophy integral
// (zeta + f)^2 / (2 h) — together with mass and energy one of the
// quadratic invariants the shallow-water system conserves in the
// continuum; its drift measures the scheme's nonlinear dissipation.
func (s *SWSolver) TotalEnstrophy(st *SWState) float64 {
	m := s.Mesh
	np := m.Np
	npsq := np * np
	vort := make([]float64, npsq)
	sA := make([]float64, npsq)
	sB := make([]float64, npsq)
	total := 0.0
	for ei, e := range m.Elements {
		VorticitySlab(m.DerivFlat, e.DFlat, e.Metdet, e.DAlpha, np,
			st.U[ei], st.V[ei], vort, sA, sB)
		for n := 0; n < npsq; n++ {
			f := 2 * Omega * math.Sin(e.Lat[n])
			q := vort[n] + f
			if st.H[ei][n] > 0 {
				total += e.SphereMP[n] * q * q / (2 * st.H[ei][n])
			}
		}
	}
	return total
}
