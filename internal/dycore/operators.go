package dycore

import "swcam/internal/mesh"

// Horizontal spectral-element operators on one np x np level slab.
//
// Each operator exists in two forms: a *Slab form that consumes flat
// metric buffers (derivFlat row-major np x np, dinv/d flattened as
// node*4+2*row+col) and caller-provided scratch — the form the Sunway
// execution backends run against LDM tiles — and a convenience wrapper
// taking a *mesh.Element that allocates scratch, used by the serial
// reference solver. Both perform identical arithmetic in identical
// order, which is what lets backend-equivalence tests demand agreement
// to rounding.

// covariantDerivSlab computes ds/dalpha and ds/dbeta at every node.
func covariantDerivSlab(derivFlat []float64, dAlpha float64, np int, s, da, db []float64) {
	fac := 2 / dAlpha
	for j := 0; j < np; j++ {
		for i := 0; i < np; i++ {
			ga, gb := 0.0, 0.0
			for m := 0; m < np; m++ {
				ga += derivFlat[i*np+m] * s[j*np+m]
				gb += derivFlat[j*np+m] * s[m*np+i]
			}
			da[j*np+i] = ga * fac
			db[j*np+i] = gb * fac
		}
	}
}

// GradientSlab computes the spherical gradient of scalar slab s into
// (gx, gy), using scratch slices da, db (np*np each).
func GradientSlab(derivFlat, dinvFlat []float64, dAlpha float64, np int, s, gx, gy, da, db []float64) {
	covariantDerivSlab(derivFlat, dAlpha, np, s, da, db)
	for n := 0; n < np*np; n++ {
		// spherical = Dinv^T . (da, db), scaled by 1/a.
		gx[n] = (dinvFlat[4*n+0]*da[n] + dinvFlat[4*n+2]*db[n]) * Rrearth
		gy[n] = (dinvFlat[4*n+1]*da[n] + dinvFlat[4*n+3]*db[n]) * Rrearth
	}
}

// GradientSphere is the element wrapper around GradientSlab.
func GradientSphere(e *mesh.Element, derivFlat []float64, np int, s, gx, gy []float64) {
	da := make([]float64, np*np)
	db := make([]float64, np*np)
	GradientSlab(derivFlat, e.DinvFlat, e.DAlpha, np, s, gx, gy, da, db)
}

// DivergenceSlab computes the spherical divergence of (u, v) into div,
// using scratch gv1, gv2 (np*np each).
func DivergenceSlab(derivFlat, dinvFlat, metdet []float64, dAlpha float64, np int, u, v, div, gv1, gv2 []float64) {
	npsq := np * np
	for n := 0; n < npsq; n++ {
		c1 := dinvFlat[4*n+0]*u[n] + dinvFlat[4*n+1]*v[n]
		c2 := dinvFlat[4*n+2]*u[n] + dinvFlat[4*n+3]*v[n]
		gv1[n] = metdet[n] * c1
		gv2[n] = metdet[n] * c2
	}
	fac := 2 / dAlpha
	for j := 0; j < np; j++ {
		for i := 0; i < np; i++ {
			dda, ddb := 0.0, 0.0
			for m := 0; m < np; m++ {
				dda += derivFlat[i*np+m] * gv1[j*np+m]
				ddb += derivFlat[j*np+m] * gv2[m*np+i]
			}
			n := j*np + i
			div[n] = (dda + ddb) * fac * Rrearth / metdet[n]
		}
	}
}

// DivergenceSphere is the element wrapper around DivergenceSlab.
func DivergenceSphere(e *mesh.Element, derivFlat []float64, np int, u, v, div []float64) {
	npsq := np * np
	gv1 := make([]float64, npsq)
	gv2 := make([]float64, npsq)
	DivergenceSlab(derivFlat, e.DinvFlat, e.Metdet, e.DAlpha, np, u, v, div, gv1, gv2)
}

// VorticitySlab computes the radial curl component of (u, v) into vort,
// using scratch cov1, cov2.
func VorticitySlab(derivFlat, dFlat, metdet []float64, dAlpha float64, np int, u, v, vort, cov1, cov2 []float64) {
	npsq := np * np
	for n := 0; n < npsq; n++ {
		// covariant components: D^T . (u,v)
		cov1[n] = dFlat[4*n+0]*u[n] + dFlat[4*n+2]*v[n]
		cov2[n] = dFlat[4*n+1]*u[n] + dFlat[4*n+3]*v[n]
	}
	fac := 2 / dAlpha
	for j := 0; j < np; j++ {
		for i := 0; i < np; i++ {
			dda, ddb := 0.0, 0.0
			for m := 0; m < np; m++ {
				dda += derivFlat[i*np+m] * cov2[j*np+m] // d(cov2)/dalpha
				ddb += derivFlat[j*np+m] * cov1[m*np+i] // d(cov1)/dbeta
			}
			n := j*np + i
			vort[n] = (dda - ddb) * fac * Rrearth / metdet[n]
		}
	}
}

// VorticitySphere is the element wrapper around VorticitySlab.
func VorticitySphere(e *mesh.Element, derivFlat []float64, np int, u, v, vort []float64) {
	npsq := np * np
	cov1 := make([]float64, npsq)
	cov2 := make([]float64, npsq)
	VorticitySlab(derivFlat, e.DFlat, e.Metdet, e.DAlpha, np, u, v, vort, cov1, cov2)
}

// LaplaceSlab computes div(grad s)) with caller scratch (4 slabs).
func LaplaceSlab(derivFlat, dinvFlat, metdet []float64, dAlpha float64, np int, s, out, s1, s2, s3, s4 []float64) {
	GradientSlab(derivFlat, dinvFlat, dAlpha, np, s, s1, s2, s3, s4)
	DivergenceSlab(derivFlat, dinvFlat, metdet, dAlpha, np, s1, s2, out, s3, s4)
}

// LaplaceSphere computes the scalar Laplacian div(grad s)). The result is
// element-local; global accuracy requires DSS between repeated
// applications (as in the biharmonic kernels).
func LaplaceSphere(e *mesh.Element, derivFlat []float64, np int, s, out []float64) {
	npsq := np * np
	s1 := make([]float64, npsq)
	s2 := make([]float64, npsq)
	s3 := make([]float64, npsq)
	s4 := make([]float64, npsq)
	LaplaceSlab(derivFlat, e.DinvFlat, e.Metdet, e.DAlpha, np, s, out, s1, s2, s3, s4)
}

// CurlSphere computes k x grad(psi): the nondivergent vector field of a
// stream function.
func CurlSphere(e *mesh.Element, derivFlat []float64, np int, psi, u, v []float64) {
	npsq := np * np
	gx := make([]float64, npsq)
	gy := make([]float64, npsq)
	GradientSphere(e, derivFlat, np, psi, gx, gy)
	for n := 0; n < npsq; n++ {
		u[n] = -gy[n]
		v[n] = gx[n]
	}
}

// VecLaplaceSlab computes the sphere-correct vector Laplacian
// grad(div) - k x grad(vort) with caller scratch (6 slabs).
func VecLaplaceSlab(derivFlat, dFlat, dinvFlat, metdet []float64, dAlpha float64, np int,
	u, v, lu, lv, s1, s2, s3, s4, s5, s6 []float64) {
	npsq := np * np
	div, vort := s1, s2
	DivergenceSlab(derivFlat, dinvFlat, metdet, dAlpha, np, u, v, div, s3, s4)
	VorticitySlab(derivFlat, dFlat, metdet, dAlpha, np, u, v, vort, s3, s4)
	GradientSlab(derivFlat, dinvFlat, dAlpha, np, div, lu, lv, s3, s4)
	GradientSlab(derivFlat, dinvFlat, dAlpha, np, vort, s5, s6, s3, s4)
	for n := 0; n < npsq; n++ {
		// k x grad(vort) = (-gy, gx); subtract it.
		lu[n] -= -s6[n]
		lv[n] -= s5[n]
	}
}

// VecLaplaceSphere is the element wrapper around VecLaplaceSlab.
func VecLaplaceSphere(e *mesh.Element, derivFlat []float64, np int, u, v, lu, lv []float64) {
	npsq := np * np
	scr := make([]float64, 6*npsq)
	VecLaplaceSlab(derivFlat, e.DFlat, e.DinvFlat, e.Metdet, e.DAlpha, np,
		u, v, lu, lv,
		scr[0:npsq], scr[npsq:2*npsq], scr[2*npsq:3*npsq],
		scr[3*npsq:4*npsq], scr[4*npsq:5*npsq], scr[5*npsq:6*npsq])
}
