package dycore

import "fmt"

// State holds the prognostic fields of the dycore for a set of elements
// (a rank's partition, or the whole sphere in serial runs).
//
// Horizontal fields are stored level-major: value (k, node) lives at
// index k*np*np + node, so one level's np x np slab is contiguous — the
// layout that favours the horizontal spectral operators. Vertical scans
// (pressure, geopotential, remap) therefore walk with stride np*np,
// which is precisely the axis-switch tension the paper's LDM transposes
// address (§7.3, §7.5).
type State struct {
	Np    int
	Nlev  int
	Qsize int

	U    [][]float64 // zonal wind, m/s          [elem][k*npsq+n]
	V    [][]float64 // meridional wind, m/s     [elem][k*npsq+n]
	T    [][]float64 // temperature, K           [elem][k*npsq+n]
	DP   [][]float64 // layer thickness, Pa      [elem][k*npsq+n]
	Qdp  [][]float64 // tracer mass, Pa          [elem][(q*nlev+k)*npsq+n]
	Phis [][]float64 // surface geopotential     [elem][n]
}

// NewState allocates a zeroed state for nelem elements.
func NewState(nelem, np, nlev, qsize int) *State {
	if np < 2 || nlev < 1 || qsize < 0 {
		panic(fmt.Sprintf("dycore: bad state dims np=%d nlev=%d qsize=%d", np, nlev, qsize))
	}
	npsq := np * np
	s := &State{Np: np, Nlev: nlev, Qsize: qsize}
	alloc := func(per int) [][]float64 {
		f := make([][]float64, nelem)
		for i := range f {
			f[i] = make([]float64, per)
		}
		return f
	}
	s.U = alloc(nlev * npsq)
	s.V = alloc(nlev * npsq)
	s.T = alloc(nlev * npsq)
	s.DP = alloc(nlev * npsq)
	s.Qdp = alloc(qsize * nlev * npsq)
	s.Phis = alloc(npsq)
	return s
}

// NElem returns the number of elements in the state.
func (s *State) NElem() int { return len(s.U) }

// NamedField pairs a prognostic field with its name, for code that must
// walk every field of a State generically (integrity seals, hashing,
// snapshot codecs) and attribute findings to a field by name.
type NamedField struct {
	Name string
	Data [][]float64
}

// Fields returns every prognostic array of the state in canonical order
// (U, V, T, DP, Qdp, Phis). The returned slices alias the state — this
// is a walk, not a copy. Any new [][]float64 field added to State must
// be added here; a reflection test enforces that, so integrity seals
// and state hashes can never silently skip a field.
func (s *State) Fields() []NamedField {
	return []NamedField{
		{"U", s.U},
		{"V", s.V},
		{"T", s.T},
		{"DP", s.DP},
		{"Qdp", s.Qdp},
		{"Phis", s.Phis},
	}
}

// NpSq returns np*np, the nodes per level slab.
func (s *State) NpSq() int { return s.Np * s.Np }

// Clone returns a deep copy.
func (s *State) Clone() *State {
	c := NewState(s.NElem(), s.Np, s.Nlev, s.Qsize)
	copyAll := func(dst, src [][]float64) {
		for i := range src {
			copy(dst[i], src[i])
		}
	}
	copyAll(c.U, s.U)
	copyAll(c.V, s.V)
	copyAll(c.T, s.T)
	copyAll(c.DP, s.DP)
	copyAll(c.Qdp, s.Qdp)
	copyAll(c.Phis, s.Phis)
	return c
}

// CopyFrom overwrites s with o (same dims required).
func (s *State) CopyFrom(o *State) {
	if s.NElem() != o.NElem() || s.Np != o.Np || s.Nlev != o.Nlev || s.Qsize != o.Qsize {
		panic("dycore: CopyFrom dimension mismatch")
	}
	cp := func(dst, src [][]float64) {
		for i := range src {
			copy(dst[i], src[i])
		}
	}
	cp(s.U, o.U)
	cp(s.V, o.V)
	cp(s.T, o.T)
	cp(s.DP, o.DP)
	cp(s.Qdp, o.Qdp)
	cp(s.Phis, o.Phis)
}

// QdpAt returns the slice of tracer q for element e (all levels).
func (s *State) QdpAt(e, q int) []float64 {
	n := s.Nlev * s.NpSq()
	return s.Qdp[e][q*n : (q+1)*n]
}

// SurfacePressure computes ps = PTop + sum_k dp(k) at node n of element e.
func (s *State) SurfacePressure(e, n int) float64 {
	npsq := s.NpSq()
	ps := PTop
	for k := 0; k < s.Nlev; k++ {
		ps += s.DP[e][k*npsq+n]
	}
	return ps
}

// MaxAbsDiff returns the largest absolute difference between two states
// over the prognostic fields — the backend-equivalence metric.
func (s *State) MaxAbsDiff(o *State) float64 {
	max := 0.0
	cmp := func(a, b [][]float64) {
		for i := range a {
			for k := range a[i] {
				d := a[i][k] - b[i][k]
				if d < 0 {
					d = -d
				}
				if d > max {
					max = d
				}
			}
		}
	}
	cmp(s.U, o.U)
	cmp(s.V, o.V)
	cmp(s.T, o.T)
	cmp(s.DP, o.DP)
	cmp(s.Qdp, o.Qdp)
	return max
}
