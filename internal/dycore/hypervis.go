package dycore

import (
	"math"

	"swcam/internal/mesh"
)

// Horizontal dissipation kernels (Table 1 rows 4-6). CAM-SE damps the
// smallest resolved scales with fourth-order hyperviscosity, computed as
// two Laplacian applications with a DSS between them:
//
//	hypervis_dp1:     L1 = laplace(f)            (this file, first pass)
//	  <DSS on L1, by the driver>
//	hypervis_dp2:     f -= dt * nu * laplace(L1)  (second pass + update)
//	biharmonic_dp3d:  the same two-pass operator applied to the layer
//	                  thickness dp3d alone.
//
// Momentum uses the sphere-correct vector Laplacian.

// HypervisDP1Elem computes the first Laplacian pass for one element over
// all levels: scalar Laplacians of T and dp, vector Laplacian of (u,v).
// Outputs are element-local and must be DSS'd before the second pass.
func HypervisDP1Elem(e *mesh.Element, derivFlat []float64, np, nlev int,
	u, v, tt, dp []float64,
	lapU, lapV, lapT, lapDP []float64) {
	npsq := np * np
	for k := 0; k < nlev; k++ {
		o := k * npsq
		VecLaplaceSphere(e, derivFlat, np, u[o:o+npsq], v[o:o+npsq], lapU[o:o+npsq], lapV[o:o+npsq])
		LaplaceSphere(e, derivFlat, np, tt[o:o+npsq], lapT[o:o+npsq])
		LaplaceSphere(e, derivFlat, np, dp[o:o+npsq], lapDP[o:o+npsq])
	}
}

// HypervisDP2Elem computes the second Laplacian pass on the DSS'd first
// pass and applies the hyperviscous update f -= dt*nu*laplace(lap f) for
// one element. nuV scales the momentum damping, nuS the scalar damping
// (HOMME's nu vs nu_s/nu_p distinction).
func HypervisDP2Elem(e *mesh.Element, derivFlat []float64, np, nlev int,
	lapU, lapV, lapT, lapDP []float64,
	u, v, tt, dp []float64,
	dt, nuV, nuS float64,
	scrU, scrV, scrS []float64) {
	npsq := np * np
	for k := 0; k < nlev; k++ {
		o := k * npsq
		VecLaplaceSphere(e, derivFlat, np, lapU[o:o+npsq], lapV[o:o+npsq], scrU, scrV)
		for n := 0; n < npsq; n++ {
			u[o+n] -= dt * nuV * scrU[n]
			v[o+n] -= dt * nuV * scrV[n]
		}
		LaplaceSphere(e, derivFlat, np, lapT[o:o+npsq], scrS)
		for n := 0; n < npsq; n++ {
			tt[o+n] -= dt * nuS * scrS[n]
		}
		LaplaceSphere(e, derivFlat, np, lapDP[o:o+npsq], scrS)
		for n := 0; n < npsq; n++ {
			dp[o+n] -= dt * nuS * scrS[n]
		}
	}
}

// BiharmonicDP3DElem computes the weak biharmonic of the layer thickness
// alone: the first pass here, the second pass after the caller's DSS.
// first=true computes lap(dp) into out; first=false computes lap(out's
// DSS'd content) into out again, yielding grad^4 dp.
func BiharmonicDP3DElem(e *mesh.Element, derivFlat []float64, np, nlev int,
	in, out []float64) {
	npsq := np * np
	for k := 0; k < nlev; k++ {
		o := k * npsq
		LaplaceSphere(e, derivFlat, np, in[o:o+npsq], out[o:o+npsq])
	}
}

// HypervisCoefficient returns the CAM-SE tensor hyperviscosity
// coefficient for a given resolution: nu ~ 1e15 m^4/s at ne=30, scaling
// as (30/ne)^3.2 (the empirical HOMME resolution scaling).
func HypervisCoefficient(ne int) float64 {
	return 1.0e15 * math.Pow(30.0/float64(ne), 3.2)
}
