package dycore

import (
	"math"
	"testing"
)

// swDt returns a gravity-wave-stable step for depth h0 at resolution ne:
// node spacing over wave speed with a safety factor.
func swDt(ne int, h0 float64) float64 {
	dxNode := Rearth * (math.Pi / 2) / float64(ne) * 0.28 // min GLL gap
	c := math.Sqrt(Gravit * h0)
	return 0.5 * dxNode / c
}

func TestWilliamson2StaysSteady(t *testing.T) {
	// Case 2 is an exact steady solution: after a simulated day the
	// height field must match the initial condition to discretization
	// error (HOMME's acceptance threshold at coarse resolution is
	// relative l2 ~ 1e-5..1e-4).
	const (
		u0 = 20.0
		h0 = 8000.0
	)
	s, err := NewSWSolver(6, swDt(6, h0))
	if err != nil {
		t.Fatal(err)
	}
	st := s.NewState()
	s.InitWilliamson2(st, u0, h0)
	ref := st.Clone()

	steps := 40
	for i := 0; i < steps; i++ {
		s.Step(st)
	}
	var num, den float64
	for ei := range st.H {
		for n := range st.H[ei] {
			d := st.H[ei][n] - ref.H[ei][n]
			num += d * d
			den += ref.H[ei][n] * ref.H[ei][n]
		}
	}
	l2 := math.Sqrt(num / den)
	if l2 > 5e-4 {
		t.Errorf("Williamson 2 height drifted: relative l2 = %g", l2)
	}
	// Winds stay close to the geostrophic profile too.
	maxdu := 0.0
	for ei := range st.U {
		for n := range st.U[ei] {
			if d := math.Abs(st.U[ei][n] - ref.U[ei][n]); d > maxdu {
				maxdu = d
			}
		}
	}
	if maxdu > 0.05*u0 {
		t.Errorf("Williamson 2 wind drifted by %g m/s", maxdu)
	}
}

func TestWilliamson2ErrorConvergesWithResolution(t *testing.T) {
	// The continuum tendency of case 2 is exactly zero, so the norm of
	// the discrete RHS measures pure spatial truncation error and must
	// fall fast under refinement (time-integration and hyperviscosity
	// effects excluded by construction).
	tendency := func(ne int) float64 {
		const h0 = 8000.0
		s, err := NewSWSolver(ne, 1)
		if err != nil {
			t.Fatal(err)
		}
		st := s.NewState()
		s.InitWilliamson2(st, 20, h0)
		zero := s.NewState() // base = 0, dt = 1: out = RHS
		out := s.NewState()
		s.applyRHS(st, zero, out, 1)
		var num, den float64
		for ei := range out.H {
			for n := range out.H[ei] {
				num += out.H[ei][n] * out.H[ei][n]
				den += st.H[ei][n] * st.H[ei][n]
			}
		}
		return math.Sqrt(num / den)
	}
	e4, e8 := tendency(4), tendency(8)
	if e8 > e4/4 {
		t.Errorf("case 2 tendency not converging: ne4 %g, ne8 %g", e4, e8)
	}
}

func TestShallowWaterConservesMass(t *testing.T) {
	s, err := NewSWSolver(4, swDt(4, 8000))
	if err != nil {
		t.Fatal(err)
	}
	st := s.NewState()
	s.InitRossbyHaurwitz(st)
	m0 := s.TotalMass(st)
	for i := 0; i < 10; i++ {
		s.Step(st)
	}
	if rel := math.Abs(s.TotalMass(st)-m0) / m0; rel > 1e-11 {
		t.Errorf("shallow-water mass drifted by %g", rel)
	}
}

func TestRossbyHaurwitzStable(t *testing.T) {
	// The RH4 wave is a demanding nonlinear test: the run must stay
	// bounded with near-conserved energy over a simulated day at ne4.
	s, err := NewSWSolver(4, swDt(4, 10000))
	if err != nil {
		t.Fatal(err)
	}
	st := s.NewState()
	s.InitRossbyHaurwitz(st)
	e0 := s.TotalEnergy(st)
	steps := int(86400 / s.Dt / 4) // quarter day keeps the test quick
	for i := 0; i < steps; i++ {
		s.Step(st)
	}
	for ei := range st.H {
		for n := range st.H[ei] {
			if st.H[ei][n] < 1000 || st.H[ei][n] > 20000 || math.IsNaN(st.H[ei][n]) {
				t.Fatalf("RH wave height blew up: %g", st.H[ei][n])
			}
		}
	}
	if rel := math.Abs(s.TotalEnergy(st)-e0) / e0; rel > 0.02 {
		t.Errorf("RH energy drifted by %g relative", rel)
	}
}

func TestRossbyHaurwitzMovesEast(t *testing.T) {
	// The RH4 pattern translates eastward; track the longitude of the
	// height maximum along the equator-ish band.
	s, err := NewSWSolver(6, swDt(6, 10000))
	if err != nil {
		t.Fatal(err)
	}
	st := s.NewState()
	s.InitRossbyHaurwitz(st)
	peakLon := func() float64 {
		best, lon := math.Inf(-1), 0.0
		npsq := s.Mesh.Np * s.Mesh.Np
		for ei, e := range s.Mesh.Elements {
			for n := 0; n < npsq; n++ {
				if math.Abs(e.Lat[n]) < 0.45 && st.H[ei][n] > best {
					best, lon = st.H[ei][n], e.Lon[n]
				}
			}
		}
		return lon
	}
	lon0 := peakLon()
	simTime := 0.0
	for simTime < 6*3600 {
		s.Step(st)
		simTime += s.Dt
	}
	moved := peakLon() - lon0
	for moved < -math.Pi/4 {
		moved += math.Pi / 2 // wavenumber-4 periodicity
	}
	for moved > math.Pi/4 {
		moved -= math.Pi / 2
	}
	// Analytic phase speed: (R(3+R)omega - 2 Omega) / ((1+R)(2+R)),
	// eastward; over 6 h the crest moves a few degrees.
	if moved <= 0 {
		t.Errorf("RH wave moved %g rad (expected eastward)", moved)
	}
}

func TestShallowWaterTopographyBlocksFlow(t *testing.T) {
	// A mountain in an otherwise balanced flow must deflect it: velocity
	// develops where the topographic gradient acts (Williamson case 5
	// flavour).
	const h0 = 5960.0
	s, err := NewSWSolver(4, swDt(4, h0))
	if err != nil {
		t.Fatal(err)
	}
	st := s.NewState()
	s.InitWilliamson2(st, 20, h0)
	// Case 5 mountain: 2000 m cone at (90W, 30N), here Gaussian.
	const lonC, latC = 3 * math.Pi / 2, math.Pi / 6
	npsq := s.Mesh.Np * s.Mesh.Np
	for ei, e := range s.Mesh.Elements {
		for n := 0; n < npsq; n++ {
			cosd := math.Sin(latC)*math.Sin(e.Lat[n]) +
				math.Cos(latC)*math.Cos(e.Lat[n])*math.Cos(e.Lon[n]-lonC)
			d := math.Acos(math.Max(-1, math.Min(1, cosd)))
			s.Hs[ei][n] = 2000 * math.Exp(-(d/0.35)*(d/0.35))
			// Keep the free surface where case 2 put it: h + hs = const
			// along the balanced profile means h dips over the mountain.
			st.H[ei][n] -= s.Hs[ei][n]
		}
	}
	ref := st.Clone()
	for i := 0; i < 20; i++ {
		s.Step(st)
	}
	// The flow must have responded (wave train) but remained bounded.
	var maxDv float64
	for ei := range st.V {
		for n := range st.V[ei] {
			if d := math.Abs(st.V[ei][n] - ref.V[ei][n]); d > maxDv {
				maxDv = d
			}
		}
	}
	if maxDv < 0.01 {
		t.Error("mountain produced no meridional response")
	}
	if maxDv > 50 {
		t.Errorf("mountain response blew up: %g m/s", maxDv)
	}
}

func TestRossbyHaurwitzEnstrophyDecays(t *testing.T) {
	// Potential enstrophy is conserved in the continuum; the
	// hyperviscous scheme must dissipate it slowly, never grow it
	// (growth at these scales signals nonlinear instability).
	s, err := NewSWSolver(4, swDt(4, 10000))
	if err != nil {
		t.Fatal(err)
	}
	st := s.NewState()
	s.InitRossbyHaurwitz(st)
	z0 := s.TotalEnstrophy(st)
	if z0 <= 0 {
		t.Fatal("no enstrophy in the RH wave")
	}
	for i := 0; i < 20; i++ {
		s.Step(st)
	}
	z1 := s.TotalEnstrophy(st)
	if z1 > 1.02*z0 {
		t.Errorf("enstrophy grew: %g -> %g", z0, z1)
	}
	if z1 < 0.5*z0 {
		t.Errorf("enstrophy collapsed unphysically fast: %g -> %g", z0, z1)
	}
}
