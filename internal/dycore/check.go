package dycore

import (
	"errors"
	"fmt"
	"math"
)

// ErrUnstable is wrapped by every State.Check failure: a numerical
// blowup (NaN/Inf, collapsed layer, CFL-violating wind) that the
// watchdog must catch before it propagates through a DSS exchange into
// every rank's fields.
var ErrUnstable = errors.New("dycore: state unstable")

// Check scans the prognostic fields for the signatures of a blowup:
// non-finite values anywhere, non-positive layer thickness or
// temperature, and horizontal wind speed above maxWind (the CFL guard —
// pass the largest speed the configured dt and grid spacing admit;
// maxWind <= 0 disables the wind test). It returns nil for a healthy
// state and an ErrUnstable-wrapped error naming the first offending
// field, element, and index otherwise. Check never modifies the state,
// so running it at any cadence cannot change a run's trajectory.
func (s *State) Check(maxWind float64) error {
	finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	maxW2 := maxWind * maxWind
	for ei := range s.U {
		for i, u := range s.U[ei] {
			v := s.V[ei][i]
			if !finite(u) || !finite(v) {
				return fmt.Errorf("%w: non-finite wind (%g, %g) at elem %d idx %d", ErrUnstable, u, v, ei, i)
			}
			if maxWind > 0 && u*u+v*v > maxW2 {
				return fmt.Errorf("%w: wind speed %.1f m/s exceeds CFL guard %.1f m/s at elem %d idx %d",
					ErrUnstable, math.Sqrt(u*u+v*v), maxWind, ei, i)
			}
		}
		for i, tv := range s.T[ei] {
			if !finite(tv) || tv <= 0 {
				return fmt.Errorf("%w: temperature %g K at elem %d idx %d", ErrUnstable, tv, ei, i)
			}
		}
		for i, dp := range s.DP[ei] {
			if !finite(dp) || dp <= 0 {
				return fmt.Errorf("%w: layer thickness %g Pa at elem %d idx %d", ErrUnstable, dp, ei, i)
			}
		}
		for i, q := range s.Qdp[ei] {
			if !finite(q) {
				return fmt.Errorf("%w: non-finite tracer mass at elem %d idx %d", ErrUnstable, ei, i)
			}
		}
		for i, p := range s.Phis[ei] {
			if !finite(p) {
				return fmt.Errorf("%w: non-finite surface geopotential at elem %d idx %d", ErrUnstable, ei, i)
			}
		}
	}
	return nil
}

// CFLMaxWind returns the advective-CFL wind bound for a configuration:
// the speed at which a signal crosses one GLL node spacing per timestep,
// scaled by the safety factor (use < 1). It is the natural maxWind
// argument for State.Check.
func (c Config) CFLMaxWind(safety float64) float64 {
	// Mean node spacing: quarter of the sphere's circumference spans
	// ne*(np-1) GLL intervals along a cube edge.
	dx := (math.Pi / 2) * Rearth / float64(c.Ne*(c.Np-1))
	return safety * dx / c.Dt
}
