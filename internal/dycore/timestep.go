package dycore

import (
	"fmt"

	"swcam/internal/mesh"
)

// Config selects the dycore discretization, mirroring the CAM-SE
// namelist knobs the paper's experiments vary.
type Config struct {
	Ne    int // elements per cube edge (Table 2 resolutions)
	Np    int // GLL points per element edge (CAM-SE: 4)
	Nlev  int // vertical levels (128 in the paper's dycore runs, 30 in CAM)
	Qsize int // tracer count

	Dt               float64 // dynamics timestep, s
	NuV              float64 // momentum hyperviscosity, m^4/s
	NuS              float64 // scalar hyperviscosity, m^4/s
	HypervisSubcycle int     // hyperviscosity substeps per dynamics step
	RemapFreq        int     // vertical remap every N dynamics steps
	Limiter          bool    // tracer positivity limiter
}

// DefaultConfig returns CAM-SE-like settings for a given resolution:
// timestep scaled with resolution (more conservative than HOMME's
// ne30/300s because this driver does not subcycle gravity waves),
// hyperviscosity from the HOMME resolution scaling.
func DefaultConfig(ne int) Config {
	nu := HypervisCoefficient(ne)
	return Config{
		Ne: ne, Np: 4, Nlev: 30, Qsize: 4,
		Dt:               100 * 30 / float64(ne),
		NuV:              nu,
		NuS:              nu,
		HypervisSubcycle: 1,
		RemapFreq:        2,
		Limiter:          true,
	}
}

// Validate rejects configurations the discretization cannot run.
func (c Config) Validate() error {
	switch {
	case c.Ne < 1:
		return fmt.Errorf("dycore: ne = %d", c.Ne)
	case c.Np < 2:
		return fmt.Errorf("dycore: np = %d", c.Np)
	case c.Nlev < 2:
		return fmt.Errorf("dycore: nlev = %d", c.Nlev)
	case c.Qsize < 0:
		return fmt.Errorf("dycore: qsize = %d", c.Qsize)
	case c.Dt <= 0:
		return fmt.Errorf("dycore: dt = %g", c.Dt)
	case c.RemapFreq < 1:
		return fmt.Errorf("dycore: remap frequency = %d", c.RemapFreq)
	case c.HypervisSubcycle < 0:
		return fmt.Errorf("dycore: hypervis subcycle = %d", c.HypervisSubcycle)
	}
	return nil
}

// Solver is the serial whole-sphere dycore driver: it owns the mesh, the
// vertical coordinate, and per-element scratch, and advances a State
// through the full CAM-SE sequence — RK dynamics (compute_and_apply_rhs),
// hyperviscosity (hypervis_dp1/dp2), tracer advection (euler_step), and
// periodic vertical remap. DSS is applied through the mesh directly; the
// distributed driver in internal/core replaces it with halo exchanges.
type Solver struct {
	Cfg    Config
	Mesh   *mesh.Mesh
	Hybrid *HybridCoord

	ws   *Workspace
	rhs  *RHS
	step int

	// Per-element whole-field scratch for stages and Laplacians.
	lapU, lapV, lapT, lapDP [][]float64
	scrU, scrV, scrS        []float64
	colA, colB, colC, colD  []float64
	flxU, flxV, divScr      []float64
	gv1, gv2                []float64
	remapWS                 *RemapWorkspace
}

// NewSolver builds the mesh and scratch for a configuration.
func NewSolver(cfg Config) (*Solver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := mesh.New(cfg.Ne, cfg.Np)
	s := &Solver{
		Cfg:    cfg,
		Mesh:   m,
		Hybrid: NewHybridCoord(cfg.Nlev),
		ws:     NewWorkspace(cfg.Np, cfg.Nlev),
		rhs:    NewRHS(cfg.Np, cfg.Nlev),
	}
	npsq := cfg.Np * cfg.Np
	n := m.NElems()
	allocEl := func() [][]float64 {
		f := make([][]float64, n)
		for i := range f {
			f[i] = make([]float64, cfg.Nlev*npsq)
		}
		return f
	}
	s.lapU, s.lapV, s.lapT, s.lapDP = allocEl(), allocEl(), allocEl(), allocEl()
	s.scrU = make([]float64, npsq)
	s.scrV = make([]float64, npsq)
	s.scrS = make([]float64, npsq)
	s.colA = make([]float64, cfg.Nlev)
	s.colB = make([]float64, cfg.Nlev)
	s.colC = make([]float64, cfg.Nlev)
	s.colD = make([]float64, cfg.Nlev)
	s.flxU = make([]float64, npsq)
	s.flxV = make([]float64, npsq)
	s.divScr = make([]float64, npsq)
	s.gv1 = make([]float64, npsq)
	s.gv2 = make([]float64, npsq)
	s.remapWS = NewRemapWorkspace(cfg.Nlev)
	return s, nil
}

// NewState allocates a state matching the solver's dimensions.
func (s *Solver) NewState() *State {
	return NewState(s.Mesh.NElems(), s.Cfg.Np, s.Cfg.Nlev, s.Cfg.Qsize)
}

// dssState applies serial DSS to the dynamics fields of st.
func (s *Solver) dssState(st *State) {
	s.DSSLevelMajor(st.U, st.V, st.T, st.DP)
}

// DSSLevelMajor applies the mesh DSS to level-major per-element fields.
func (s *Solver) DSSLevelMajor(fields ...[][]float64) {
	m := s.Mesh
	npsq := s.Cfg.Np * s.Cfg.Np
	for _, field := range fields {
		nlev := len(field[0]) / npsq
		for _, refs := range m.NodeElems {
			if len(refs) == 1 {
				continue
			}
			for k := 0; k < nlev; k++ {
				avg := 0.0
				for _, r := range refs {
					avg += m.Elements[r.Elem].DSSW[r.Idx] * field[r.Elem][k*npsq+r.Idx]
				}
				for _, r := range refs {
					field[r.Elem][k*npsq+r.Idx] = avg
				}
			}
		}
	}
}

// applyRHS evaluates out = base + dt*RHS(cur) for all elements, then DSS.
func (s *Solver) applyRHS(cur, base, out *State, dt float64) {
	for ei, e := range s.Mesh.Elements {
		ComputeAndApplyRHSElem(e, s.Mesh.DerivFlat, s.ws, s.rhs,
			cur.U[ei], cur.V[ei], cur.T[ei], cur.DP[ei], cur.Phis[ei],
			base.U[ei], base.V[ei], base.T[ei], base.DP[ei],
			out.U[ei], out.V[ei], out.T[ei], out.DP[ei], dt)
	}
	s.dssState(out)
}

// DynStep advances the dynamics one SSP-RK2 (Heun) step:
//
//	s1     = u^n + dt f(u^n)
//	s2     = s1  + dt f(s1)
//	u^{n+1} = (u^n + s2)/2
//
// with DSS after every RHS application, exactly the stage structure whose
// three boundary exchanges §7.6 overlaps.
func (s *Solver) DynStep(st *State) {
	dt := s.Cfg.Dt
	s1 := st.Clone()
	s.applyRHS(st, st, s1, dt)
	s2 := s1.Clone()
	s.applyRHS(s1, s1, s2, dt)
	for ei := range st.U {
		SSPRK2Combine(st.U[ei], s2.U[ei], st.U[ei])
		SSPRK2Combine(st.V[ei], s2.V[ei], st.V[ei])
		SSPRK2Combine(st.T[ei], s2.T[ei], st.T[ei])
		SSPRK2Combine(st.DP[ei], s2.DP[ei], st.DP[ei])
	}
}

// HypervisStep applies HypervisSubcycle rounds of fourth-order
// hyperviscosity to the dynamics fields.
func (s *Solver) HypervisStep(st *State) {
	if s.Cfg.HypervisSubcycle == 0 || (s.Cfg.NuV == 0 && s.Cfg.NuS == 0) {
		return
	}
	np, nlev := s.Cfg.Np, s.Cfg.Nlev
	dt := s.Cfg.Dt / float64(s.Cfg.HypervisSubcycle)
	// The strong-form scalar Laplacian does not integrate to exactly zero
	// (the weak form HOMME uses does), so the dp damping leaks a little
	// global mass; restore it with a proportional fixer, CAM-style.
	mass0 := s.TotalMass(st)
	for sub := 0; sub < s.Cfg.HypervisSubcycle; sub++ {
		for ei, e := range s.Mesh.Elements {
			HypervisDP1Elem(e, s.Mesh.DerivFlat, np, nlev,
				st.U[ei], st.V[ei], st.T[ei], st.DP[ei],
				s.lapU[ei], s.lapV[ei], s.lapT[ei], s.lapDP[ei])
		}
		s.DSSLevelMajor(s.lapU, s.lapV, s.lapT, s.lapDP)
		for ei, e := range s.Mesh.Elements {
			HypervisDP2Elem(e, s.Mesh.DerivFlat, np, nlev,
				s.lapU[ei], s.lapV[ei], s.lapT[ei], s.lapDP[ei],
				st.U[ei], st.V[ei], st.T[ei], st.DP[ei],
				dt, s.Cfg.NuV, s.Cfg.NuS, s.scrU, s.scrV, s.scrS)
		}
		s.dssState(st)
	}
	if mass1 := s.TotalMass(st); mass1 > 0 {
		scale := mass0 / mass1
		for ei := range st.DP {
			for i := range st.DP[ei] {
				st.DP[ei][i] *= scale
			}
		}
	}
}

// TracerStep advances all tracers one SSP-RK2 euler_step using the
// state's current velocity, with the positivity limiter if configured.
func (s *Solver) TracerStep(st *State) {
	np, nlev, dt := s.Cfg.Np, s.Cfg.Nlev, s.Cfg.Dt
	npsq := np * np
	for q := 0; q < s.Cfg.Qsize; q++ {
		qn := make([][]float64, st.NElem())
		stage := make([][]float64, st.NElem())
		for ei := range qn {
			cur := st.QdpAt(ei, q)
			qn[ei] = append([]float64(nil), cur...)
			stage[ei] = cur // advance in place; qn keeps the original
		}
		advance := func() {
			for ei, e := range s.Mesh.Elements {
				EulerStepElem(e, s.Mesh.DerivFlat, np, nlev,
					st.U[ei], st.V[ei], stage[ei], stage[ei], dt,
					s.flxU, s.flxV, s.divScr, s.gv1, s.gv2)
			}
			if s.Cfg.Limiter {
				for ei, e := range s.Mesh.Elements {
					for k := 0; k < nlev; k++ {
						LimiterClipAndSum(stage[ei][k*npsq:(k+1)*npsq], e.SphereMP)
					}
				}
			}
			s.DSSLevelMajor(stage)
		}
		advance() // stage 1: q1 = qn + dt f(qn)
		advance() // stage 2: s2 = q1 + dt f(q1)
		for ei := range stage {
			SSPRK2Combine(qn[ei], stage[ei], stage[ei])
		}
	}
}

// RemapStep remaps the whole state back to the reference vertical grid.
func (s *Solver) RemapStep(st *State) {
	for ei := range s.Mesh.Elements {
		RemapStateElem(s.Hybrid, s.Cfg.Np, s.Cfg.Nlev, s.Cfg.Qsize,
			st.U[ei], st.V[ei], st.T[ei], st.DP[ei], st.Qdp[ei],
			s.colA, s.colB, s.colC, s.colD, s.remapWS)
	}
}

// Step advances the full model state by one dynamics timestep in the
// CAM-SE sequence; the remap fires every RemapFreq steps.
func (s *Solver) Step(st *State) {
	s.DynStep(st)
	s.HypervisStep(st)
	if s.Cfg.Qsize > 0 {
		s.TracerStep(st)
	}
	s.step++
	if s.step%s.Cfg.RemapFreq == 0 {
		s.RemapStep(st)
	}
}

// StepCount returns the number of Step calls taken so far.
func (s *Solver) StepCount() int { return s.step }

// SetStep overrides the internal step counter — restart support: the
// vertical-remap cadence (every RemapFreq steps) must survive a
// checkpoint/restore for bit-exact continuation.
func (s *Solver) SetStep(n int) { s.step = n }

// GravityWaveCFL estimates the gravity-wave Courant number of a
// configuration: c * dt / dx_node with c ~ 340 m/s and the smallest GLL
// node spacing of the grid. Values approaching 1 are unstable for the
// non-subcycled RK2 driver; DefaultConfig stays near 0.4.
func (c Config) GravityWaveCFL() float64 {
	// Smallest GLL gap for np=4 is (1 - 1/sqrt 5)/2 of the element
	// half-width; generalize via the first interior node.
	xi, _ := mesh.GLL(c.Np)
	minGap := (xi[1] - xi[0]) / 2 // fraction of half-width
	dxNode := Rearth * (3.14159265358979 / 2) / float64(c.Ne) * minGap
	const cGrav = 340.0
	return cGrav * c.Dt / dxNode
}
