package dycore

import (
	"math"
	"testing"
)

func TestSLDeparturePoint(t *testing.T) {
	// Pure eastward wind at the equator for dt seconds moves the
	// departure point westward by u*dt/a radians.
	p := lonLatToCartTest(1.0, 0.0)
	const u, dt = 50.0, 600.0
	d := departure(p, u, 0, dt)
	lon := math.Atan2(d[1], d[0])
	want := 1.0 - u*dt/Rearth
	if math.Abs(lon-want) > 1e-10 {
		t.Errorf("departure lon = %v, want %v", lon, want)
	}
	if math.Abs(d[2]) > 1e-12 {
		t.Errorf("equatorial trajectory left the equator: z=%v", d[2])
	}
	// Zero wind: departure is the point itself.
	if q := departure(p, 0, 0, dt); q != p {
		t.Error("zero-wind departure moved")
	}
}

func lonLatToCartTest(lon, lat float64) [3]float64 {
	cl := math.Cos(lat)
	return [3]float64{cl * math.Cos(lon), cl * math.Sin(lon), math.Sin(lat)}
}

func TestSLLocateRoundTrip(t *testing.T) {
	// Every GLL node must locate to an element that contains it with
	// reference coordinates reproducing its position.
	s := smallSolver(t, 3, 4, 0)
	sl := NewSLTransport(s.Mesh)
	for _, e := range s.Mesh.Elements[:12] {
		for n := 0; n < 16; n++ {
			ei, xi, eta := sl.locate(e.Pos[n])
			el := s.Mesh.Elements[ei]
			alpha := el.Alpha0 + (xi+1)/2*el.DAlpha
			beta := el.Beta0 + (eta+1)/2*el.DAlpha
			q := meshCubeToSphere(el.Face, alpha, beta)
			// Chord distance: acos(dot) loses half the precision near 1.
			d := e.Pos[n].Sub(q).Norm()
			if d > 1e-10 {
				t.Fatalf("locate round trip off by %g (chord)", d)
			}
		}
	}
}

func TestLagrangeWeightsPartitionOfUnity(t *testing.T) {
	nodes, _ := GLLNodesForTest()
	w := make([]float64, 4)
	for _, x := range []float64{-1, -0.3, 0, 0.7, 1} {
		lagrangeWeights(nodes, x, w)
		sum := 0.0
		for _, v := range w {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("weights at %v sum to %v", x, sum)
		}
	}
	// Cardinal property: at node i, w = e_i.
	for i, xn := range nodes {
		lagrangeWeights(nodes, xn, w)
		for j := range w {
			want := 0.0
			if j == i {
				want = 1
			}
			if math.Abs(w[j]-want) > 1e-12 {
				t.Errorf("cardinality broken at node %d", i)
			}
		}
	}
}

// TestSLAdvectionMovesAndConserves: solid-body rotation carries the bell
// eastward; the mass fixer keeps the integral; the SL step allows a CFL
// far above euler_step's limit.
func TestSLAdvectionMovesAndConserves(t *testing.T) {
	s := smallSolver(t, 6, 4, 1)
	st := s.NewState()
	const u0 = 80.0
	s.InitSolidBodyRotation(st, 280, u0, 0)
	s.InitCosineBellTracer(st, 0, math.Pi, 0, 0.5)
	sl := NewSLTransport(s.Mesh)
	q0 := s.TracerMass(st, 0)

	// dt 4x the advective step the euler path would tolerate here.
	dt := 4 * s.Cfg.Dt
	steps := 6
	for i := 0; i < steps; i++ {
		sl.AdvectTracer(s, st, 0, dt)
	}
	if rel := math.Abs(s.TracerMass(st, 0)-q0) / q0; rel > 1e-12 {
		t.Errorf("SL mass fixer failed: drift %g", rel)
	}
	// Centroid moved eastward by roughly u0*dt*steps/a.
	npsq := 16
	var sx, sy float64
	for ei, e := range s.Mesh.Elements {
		q := st.QdpAt(ei, 0)
		for n := 0; n < npsq; n++ {
			w := 0.0
			for k := 0; k < s.Cfg.Nlev; k++ {
				w += q[k*npsq+n]
			}
			w *= e.SphereMP[n]
			sx += w * math.Cos(e.Lon[n])
			sy += w * math.Sin(e.Lon[n])
		}
	}
	moved := math.Atan2(sy, sx) - math.Pi
	for moved < -math.Pi {
		moved += 2 * math.Pi
	}
	want := u0 * dt * float64(steps) / Rearth
	if moved < 0.5*want || moved > 1.5*want {
		t.Errorf("SL bell moved %g rad, want ~%g", moved, want)
	}
	// No wild overshoots: mixing ratios stay within ~20% of the initial
	// extrema (interpolation can overshoot slightly; it must not blow up).
	for ei := range st.Qdp {
		q := st.QdpAt(ei, 0)
		for i, v := range q {
			if v/st.DP[ei][i%len(st.DP[ei])] > 1.2 || v < -0.2*st.DP[ei][i%len(st.DP[ei])] {
				t.Fatalf("SL overshoot: mixing ratio %g", v/st.DP[ei][i%len(st.DP[ei])])
			}
		}
	}
}
