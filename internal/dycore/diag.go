package dycore

import "math"

// Global diagnostics used by conservation tests and run monitoring.

// TotalMass returns the global integral of surface pressure minus the
// model top — i.e. the total dry-air mass (per unit gravity and radius^2
// scaling; constants drop out of conservation ratios).
func (s *Solver) TotalMass(st *State) float64 {
	npsq := s.Cfg.Np * s.Cfg.Np
	total := 0.0
	for ei, e := range s.Mesh.Elements {
		for n := 0; n < npsq; n++ {
			col := 0.0
			for k := 0; k < s.Cfg.Nlev; k++ {
				col += st.DP[ei][k*npsq+n]
			}
			total += e.SphereMP[n] * col
		}
	}
	return total
}

// TracerMass returns the global tracer-q mass integral.
func (s *Solver) TracerMass(st *State, q int) float64 {
	npsq := s.Cfg.Np * s.Cfg.Np
	total := 0.0
	for ei, e := range s.Mesh.Elements {
		qdp := st.QdpAt(ei, q)
		for n := 0; n < npsq; n++ {
			col := 0.0
			for k := 0; k < s.Cfg.Nlev; k++ {
				col += qdp[k*npsq+n]
			}
			total += e.SphereMP[n] * col
		}
	}
	return total
}

// TotalEnergy returns the global integral of total energy per unit area:
// (cp*T + KE + phis) dp/g summed over the column.
func (s *Solver) TotalEnergy(st *State) float64 {
	npsq := s.Cfg.Np * s.Cfg.Np
	total := 0.0
	for ei, e := range s.Mesh.Elements {
		for n := 0; n < npsq; n++ {
			col := 0.0
			for k := 0; k < s.Cfg.Nlev; k++ {
				i := k*npsq + n
				ke := (st.U[ei][i]*st.U[ei][i] + st.V[ei][i]*st.V[ei][i]) / 2
				col += (Cp*st.T[ei][i] + ke + st.Phis[ei][n]) * st.DP[ei][i] / Gravit
			}
			total += e.SphereMP[n] * col
		}
	}
	return total
}

// MaxWind returns the largest horizontal wind speed in the state, the
// standard CFL/stability monitor.
func (s *Solver) MaxWind(st *State) float64 {
	max := 0.0
	for ei := range st.U {
		for i := range st.U[ei] {
			w := math.Hypot(st.U[ei][i], st.V[ei][i])
			if w > max {
				max = w
			}
		}
	}
	return max
}

// MinDP returns the smallest layer thickness — negative values mean the
// Lagrangian surfaces have crossed and the remap cadence is too slow.
func (s *Solver) MinDP(st *State) float64 {
	min := math.Inf(1)
	for ei := range st.DP {
		for _, d := range st.DP[ei] {
			if d < min {
				min = d
			}
		}
	}
	return min
}

// ZonalMeanT returns the temperature averaged over longitude bands at
// one model level: nbands latitude bins from south to north pole,
// weighted by quadrature weights — the Figure 4 climatology metric.
func (s *Solver) ZonalMeanT(st *State, level, nbands int) []float64 {
	npsq := s.Cfg.Np * s.Cfg.Np
	sum := make([]float64, nbands)
	wgt := make([]float64, nbands)
	for ei, e := range s.Mesh.Elements {
		for n := 0; n < npsq; n++ {
			b := int((e.Lat[n] + math.Pi/2) / math.Pi * float64(nbands))
			if b < 0 {
				b = 0
			}
			if b >= nbands {
				b = nbands - 1
			}
			sum[b] += e.SphereMP[n] * st.T[ei][level*npsq+n]
			wgt[b] += e.SphereMP[n]
		}
	}
	out := make([]float64, nbands)
	for b := range out {
		if wgt[b] > 0 {
			out[b] = sum[b] / wgt[b]
		}
	}
	return out
}
