package dycore

import (
	"math"
	"testing"

	"swcam/internal/mesh"
)

// evalOnMesh fills a per-element slab field from an analytic function of
// (lon, lat).
func evalOnMesh(m *mesh.Mesh, f func(lon, lat float64) float64) [][]float64 {
	out := make([][]float64, m.NElems())
	for i, e := range m.Elements {
		out[i] = make([]float64, m.Np*m.Np)
		for n := range out[i] {
			out[i][n] = f(e.Lon[n], e.Lat[n])
		}
	}
	return out
}

// maxRelErr compares a computed per-element field to an analytic one,
// normalizing by the max magnitude of the analytic field.
func maxRelErr(m *mesh.Mesh, got [][]float64, want func(lon, lat float64) float64) float64 {
	scale := 0.0
	for _, e := range m.Elements {
		for n := range e.Lon {
			v := math.Abs(want(e.Lon[n], e.Lat[n]))
			if v > scale {
				scale = v
			}
		}
	}
	if scale == 0 {
		scale = 1
	}
	maxe := 0.0
	for i, e := range m.Elements {
		for n := range e.Lon {
			err := math.Abs(got[i][n]-want(e.Lon[n], e.Lat[n])) / scale
			if err > maxe {
				maxe = err
			}
		}
	}
	return maxe
}

func TestGradientOfSinLat(t *testing.T) {
	// f = sin(lat): grad = (0, cos(lat)/a).
	m := mesh.New(6, 4)
	f := evalOnMesh(m, func(lon, lat float64) float64 { return math.Sin(lat) })
	gx := make([][]float64, m.NElems())
	gy := make([][]float64, m.NElems())
	for i, e := range m.Elements {
		gx[i] = make([]float64, m.Np*m.Np)
		gy[i] = make([]float64, m.Np*m.Np)
		GradientSphere(e, m.DerivFlat, m.Np, f[i], gx[i], gy[i])
	}
	if err := maxRelErr(m, gy, func(lon, lat float64) float64 { return math.Cos(lat) * Rrearth }); err > 2e-3 {
		t.Errorf("meridional gradient rel err %g", err)
	}
	if err := maxRelErr(m, gx, func(lon, lat float64) float64 { return 0 }); err > 1e-10/Rrearth {
		// gx is compared against zero, so maxRelErr normalized by 1;
		// require it small relative to the gy scale instead.
		max := 0.0
		for i := range gx {
			for _, v := range gx[i] {
				if math.Abs(v) > max {
					max = math.Abs(v)
				}
			}
		}
		if max > 2e-3*Rrearth {
			t.Errorf("zonal gradient should vanish, max %g", max)
		}
	}
}

func TestGradientOfZonalWave(t *testing.T) {
	// f = cos(lat)*sin(lon): d f/dlon / (a cos lat) = cos(lon)/a.
	m := mesh.New(8, 4)
	f := evalOnMesh(m, func(lon, lat float64) float64 { return math.Cos(lat) * math.Sin(lon) })
	gx := make([][]float64, m.NElems())
	for i, e := range m.Elements {
		gx[i] = make([]float64, m.Np*m.Np)
		gy := make([]float64, m.Np*m.Np)
		GradientSphere(e, m.DerivFlat, m.Np, f[i], gx[i], gy)
	}
	if err := maxRelErr(m, gx, func(lon, lat float64) float64 { return math.Cos(lon) * Rrearth }); err > 1e-3 {
		t.Errorf("zonal gradient rel err %g", err)
	}
}

func TestDivergenceOfSolidBodyIsZero(t *testing.T) {
	// Solid-body rotation u = U0 cos(lat), v = 0 is nondivergent.
	const U0 = 40.0
	m := mesh.New(6, 4)
	u := evalOnMesh(m, func(lon, lat float64) float64 { return U0 * math.Cos(lat) })
	zero := evalOnMesh(m, func(lon, lat float64) float64 { return 0 })
	for i, e := range m.Elements {
		div := make([]float64, m.Np*m.Np)
		DivergenceSphere(e, m.DerivFlat, m.Np, u[i], zero[i], div)
		for n, d := range div {
			// Truncation error of the np=4 discretization: ~6e-3 of the
			// velocity scale over the radius at ne=6, converging at 3rd
			// order (verified in TestLaplacianSpectralConvergence).
			if math.Abs(d) > 1e-2*U0*Rrearth {
				t.Fatalf("elem %d node %d: div = %g", i, n, d)
			}
		}
	}
}

func TestVorticityOfSolidBody(t *testing.T) {
	// u = U0 cos(lat): vort = 2 U0 sin(lat) / a.
	const U0 = 40.0
	m := mesh.New(6, 4)
	u := evalOnMesh(m, func(lon, lat float64) float64 { return U0 * math.Cos(lat) })
	zero := evalOnMesh(m, func(lon, lat float64) float64 { return 0 })
	vort := make([][]float64, m.NElems())
	for i, e := range m.Elements {
		vort[i] = make([]float64, m.Np*m.Np)
		VorticitySphere(e, m.DerivFlat, m.Np, u[i], zero[i], vort[i])
	}
	if err := maxRelErr(m, vort, func(lon, lat float64) float64 {
		return 2 * U0 * math.Sin(lat) * Rrearth
	}); err > 1e-2 {
		t.Errorf("vorticity rel err %g", err)
	}
}

func TestDivergenceTheorem(t *testing.T) {
	// The integral of a divergence over the closed sphere vanishes.
	m := mesh.New(4, 4)
	u := evalOnMesh(m, func(lon, lat float64) float64 { return math.Sin(lon) * math.Cos(lat) })
	v := evalOnMesh(m, func(lon, lat float64) float64 { return math.Cos(2*lat) * math.Sin(lat) })
	div := make([][]float64, m.NElems())
	for i, e := range m.Elements {
		div[i] = make([]float64, m.Np*m.Np)
		DivergenceSphere(e, m.DerivFlat, m.Np, u[i], v[i], div[i])
	}
	total := m.Integrate(div)
	// Scale: typical |div| ~ Rrearth; integral over 4pi must be ~0.
	if math.Abs(total) > 1e-10*Rrearth*4*math.Pi {
		t.Errorf("integral of divergence = %g", total)
	}
}

func TestLaplacianEigenfunction(t *testing.T) {
	// Y_1^0 = sin(lat): laplace = -l(l+1)/a^2 * Y = -2 sin(lat)/a^2.
	m := mesh.New(8, 4)
	f := evalOnMesh(m, func(lon, lat float64) float64 { return math.Sin(lat) })
	lap := make([][]float64, m.NElems())
	for i, e := range m.Elements {
		lap[i] = make([]float64, m.Np*m.Np)
		LaplaceSphere(e, m.DerivFlat, m.Np, f[i], lap[i])
	}
	// Element-local laplacian is least accurate at element boundaries;
	// DSS first for the global field.
	m.DSS(lap)
	if err := maxRelErr(m, lap, func(lon, lat float64) float64 {
		return -2 * math.Sin(lat) * Rrearth * Rrearth
	}); err > 5e-2 {
		t.Errorf("laplacian rel err %g", err)
	}
}

func TestLaplacianSpectralConvergence(t *testing.T) {
	// Refining ne must shrink the laplacian error fast.
	errAt := func(ne int) float64 {
		m := mesh.New(ne, 4)
		f := evalOnMesh(m, func(lon, lat float64) float64 {
			return math.Cos(lat) * math.Cos(lat) * math.Sin(2*lon)
		})
		lap := make([][]float64, m.NElems())
		for i, e := range m.Elements {
			lap[i] = make([]float64, m.Np*m.Np)
			LaplaceSphere(e, m.DerivFlat, m.Np, f[i], lap[i])
		}
		m.DSS(lap)
		// Y_2^2-like: eigenvalue -6/a^2.
		return maxRelErr(m, lap, func(lon, lat float64) float64 {
			return -6 * math.Cos(lat) * math.Cos(lat) * math.Sin(2*lon) * Rrearth * Rrearth
		})
	}
	e4, e8 := errAt(4), errAt(8)
	if e8 > e4/4 {
		t.Errorf("laplacian not converging: ne=4 err %g, ne=8 err %g", e4, e8)
	}
}

func TestVecLaplaceStreamFunction(t *testing.T) {
	// v = k x grad(psi) with psi = sin(lat):
	// lap v = k x grad(lap psi) = -2/a^2 * v.
	m := mesh.New(8, 4)
	psi := evalOnMesh(m, func(lon, lat float64) float64 { return math.Sin(lat) })
	u := make([][]float64, m.NElems())
	v := make([][]float64, m.NElems())
	lu := make([][]float64, m.NElems())
	lv := make([][]float64, m.NElems())
	npsq := m.Np * m.Np
	for i, e := range m.Elements {
		u[i] = make([]float64, npsq)
		v[i] = make([]float64, npsq)
		CurlSphere(e, m.DerivFlat, m.Np, psi[i], u[i], v[i])
	}
	m.DSS(u)
	m.DSS(v)
	for i, e := range m.Elements {
		lu[i] = make([]float64, npsq)
		lv[i] = make([]float64, npsq)
		VecLaplaceSphere(e, m.DerivFlat, m.Np, u[i], v[i], lu[i], lv[i])
	}
	m.DSS(lu)
	m.DSS(lv)
	want := -2 * Rrearth * Rrearth
	scale := Rrearth // |v| ~ cos(lat)/a <= 1/a
	maxe := 0.0
	for i := range lu {
		for n := 0; n < npsq; n++ {
			e1 := math.Abs(lu[i][n] - want*u[i][n])
			e2 := math.Abs(lv[i][n] - want*v[i][n])
			if e1 > maxe {
				maxe = e1
			}
			if e2 > maxe {
				maxe = e2
			}
		}
	}
	if maxe > 1e-2*scale*Rrearth*Rrearth/Rrearth {
		// Normalize: want*|v| ~ 2/a^2 * 1/a; accept 1% of that scale.
		if maxe > 0.02*2*Rrearth*Rrearth*Rrearth {
			t.Errorf("vector laplacian err %g", maxe)
		}
	}
}

func TestCurlIsNondivergent(t *testing.T) {
	// Strong-form div of a strong-form curl with DSS projections is not
	// pointwise zero (HOMME uses weak-form operators for exact
	// compatibility), but the spurious divergent content must be tiny
	// relative to the rotational content: compare L2 norms of div(curl
	// psi) and lap(psi) = vort(curl psi).
	m := mesh.New(8, 4)
	psi := evalOnMesh(m, func(lon, lat float64) float64 {
		return math.Sin(lat) * math.Cos(lat) * math.Cos(lon)
	})
	npsq := m.Np * m.Np
	u := make([][]float64, m.NElems())
	v := make([][]float64, m.NElems())
	for i, e := range m.Elements {
		u[i] = make([]float64, npsq)
		v[i] = make([]float64, npsq)
		CurlSphere(e, m.DerivFlat, m.Np, psi[i], u[i], v[i])
	}
	m.DSS(u)
	m.DSS(v)
	div := make([][]float64, m.NElems())
	vort := make([][]float64, m.NElems())
	for i, e := range m.Elements {
		div[i] = make([]float64, npsq)
		vort[i] = make([]float64, npsq)
		DivergenceSphere(e, m.DerivFlat, m.Np, u[i], v[i], div[i])
		VorticitySphere(e, m.DerivFlat, m.Np, u[i], v[i], vort[i])
	}
	m.DSS(div)
	m.DSS(vort)
	sq := func(f [][]float64) [][]float64 {
		out := make([][]float64, len(f))
		for i := range f {
			out[i] = make([]float64, len(f[i]))
			for k := range f[i] {
				out[i][k] = f[i][k] * f[i][k]
			}
		}
		return out
	}
	l2div := math.Sqrt(m.Integrate(sq(div)))
	l2vort := math.Sqrt(m.Integrate(sq(vort)))
	if l2vort == 0 {
		t.Fatal("curl produced no rotation")
	}
	if ratio := l2div / l2vort; ratio > 0.02 {
		t.Errorf("divergent content of curl = %.3f of rotational content", ratio)
	}
}
