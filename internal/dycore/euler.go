package dycore

import "swcam/internal/mesh"

// EulerStepElem advances the tracer mass qdp of one element by one
// explicit Euler stage of the flux-form advection equation,
//
//	d(qdp)/dt = -div(v qdp),
//
// the element-local body of CAM-SE's euler_step (Table 1 row 2; the
// driver composes stages into the strong-stability-preserving RK2 of the
// paper's description). All slices are level-major; out may alias in.
// flxU..gv2 are np*np caller scratch, so the kernel never allocates.
func EulerStepElem(e *mesh.Element, derivFlat []float64, np, nlev int,
	u, v, in, out []float64, dt float64,
	flxU, flxV, div, gv1, gv2 []float64) {
	npsq := np * np
	for k := 0; k < nlev; k++ {
		o := k * npsq
		for n := 0; n < npsq; n++ {
			flxU[n] = u[o+n] * in[o+n]
			flxV[n] = v[o+n] * in[o+n]
		}
		DivergenceSlab(derivFlat, e.DinvFlat, e.Metdet, e.DAlpha, np, flxU, flxV, div, gv1, gv2)
		for n := 0; n < npsq; n++ {
			out[o+n] = in[o+n] - dt*div[n]
		}
	}
}

// LimiterClipAndSum enforces tracer positivity on one element while
// conserving its tracer mass: negative nodal values are clipped to zero
// and the created mass is removed proportionally from the positive nodes
// (the optimization-free variant of HOMME's limiter8). Returns the
// clipped mass (diagnostic). qdp is one level slab; w are the element's
// SphereMP quadrature weights.
func LimiterClipAndSum(qdp, w []float64) float64 {
	var clipped, positive float64
	for n := range qdp {
		if qdp[n] < 0 {
			clipped += -qdp[n] * w[n]
			qdp[n] = 0
		} else {
			positive += qdp[n] * w[n]
		}
	}
	if clipped == 0 || positive <= 0 {
		return clipped
	}
	scale := (positive - clipped) / positive
	if scale < 0 {
		scale = 0
	}
	for n := range qdp {
		qdp[n] *= scale
	}
	return clipped
}

// SSPRK2Combine completes the Heun / SSP-RK2 update
//
//	q^{n+1} = 1/2 q^n + 1/2 (q1 + dt f(q1))
//
// where stage2 already holds q1 + dt f(q1). out may alias qn or stage2.
func SSPRK2Combine(qn, stage2, out []float64) {
	for i := range out {
		out[i] = 0.5*qn[i] + 0.5*stage2[i]
	}
}
