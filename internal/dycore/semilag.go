package dycore

import (
	"math"

	"swcam/internal/mesh"
)

// Semi-Lagrangian tracer transport — the alternative to euler_step that
// HOMME ships for long tracer timesteps (the lineage that became
// CAM-SE's SL transport). Instead of flux divergences, each GLL node
// traces its departure point backward along the wind, and the tracer
// mixing ratio is interpolated there with the element's own GLL basis:
//
//	q^{n+1}(x) = q^n(X_d(x)),  X_d = departure point of x
//
// The scheme is unconditionally stable in the advective CFL (the paper's
// euler_step subcycles instead) but not inherently conservative; a
// global proportional mass fixer restores the tracer integral, the
// standard practice.

// SLTransport holds the departure-point search acceleration for a mesh.
type SLTransport struct {
	m *mesh.Mesh
	// Element centres for the coarse search phase.
	centers []mesh.Vec3
	// Search radius: max distance from an element centre to its nodes.
	radius float64
}

// NewSLTransport prepares semi-Lagrangian transport on a mesh.
func NewSLTransport(m *mesh.Mesh) *SLTransport {
	sl := &SLTransport{m: m, centers: make([]mesh.Vec3, m.NElems())}
	npsq := m.Np * m.Np
	for ei, e := range m.Elements {
		var c mesh.Vec3
		for n := 0; n < npsq; n++ {
			c = c.Add(e.Pos[n])
		}
		sl.centers[ei] = c.Normalize()
		for n := 0; n < npsq; n++ {
			if d := mesh.GreatCircleDist(sl.centers[ei], e.Pos[n]); d > sl.radius {
				sl.radius = d
			}
		}
	}
	return sl
}

// departure traces the node at position p with local wind (u, v)
// backward over dt along a great circle (one midpoint iteration, the
// standard second-order departure-point estimate).
func departure(p mesh.Vec3, u, v, dt float64) mesh.Vec3 {
	east, north := mesh.SphericalBasis(p)
	// Angular displacement.
	dir := east.Scale(u).Add(north.Scale(v))
	speed := dir.Norm()
	if speed == 0 {
		return p
	}
	angle := speed * dt / Rearth
	dirN := dir.Scale(1 / speed)
	// Rotate p by -angle toward dir (backward trajectory).
	return p.Scale(math.Cos(angle)).Add(dirN.Scale(-math.Sin(angle))).Normalize()
}

// locate finds the element containing point p (nearest centre whose
// reference coordinates land inside [-1,1]^2) and returns the element
// id plus the reference coordinates.
func (sl *SLTransport) locate(p mesh.Vec3) (int, float64, float64) {
	bestEi := -1
	bestD := math.Inf(1)
	// Nearest centre is almost always the containing element; check its
	// neighbours too for points near edges.
	for ei := range sl.centers {
		if d := mesh.GreatCircleDist(p, sl.centers[ei]); d < bestD {
			bestD, bestEi = d, ei
		}
	}
	cand := append([]int{bestEi}, sl.m.Elements[bestEi].ShareNeighbors...)
	for _, ei := range cand {
		if a, b, ok := sl.invertElement(ei, p); ok {
			return ei, a, b
		}
	}
	// Fall back to the nearest centre with clamped coordinates.
	a, b, _ := sl.invertElement(bestEi, p)
	return bestEi, clamp(a), clamp(b)
}

func clamp(x float64) float64 { return math.Max(-1, math.Min(1, x)) }

// invertElement maps a sphere point to the element's reference square by
// Newton iteration on the equiangular gnomonic map. ok reports whether
// the point lies inside (with a small tolerance).
func (sl *SLTransport) invertElement(ei int, p mesh.Vec3) (xi, eta float64, ok bool) {
	e := sl.m.Elements[ei]
	// Initial guess: centre of the element.
	alpha := e.Alpha0 + e.DAlpha/2
	beta := e.Beta0 + e.DAlpha/2
	for it := 0; it < 25; it++ {
		q := mesh.CubeToSphere(e.Face, alpha, beta)
		r := p.Sub(q)
		if r.Norm() < 1e-13 {
			break
		}
		tA, tB := mesh.SphereTangents(e.Face, alpha, beta)
		// Solve the 2x2 tangent-plane system [tA tB] [da db]^T = r.
		a11, a12 := tA.Dot(tA), tA.Dot(tB)
		a22 := tB.Dot(tB)
		b1, b2 := tA.Dot(r), tB.Dot(r)
		det := a11*a22 - a12*a12
		if det == 0 {
			return 0, 0, false
		}
		da := (b1*a22 - b2*a12) / det
		db := (b2*a11 - b1*a12) / det
		alpha += da
		beta += db
		if math.Abs(da)+math.Abs(db) < 1e-14 {
			break
		}
	}
	xi = 2*(alpha-e.Alpha0)/e.DAlpha - 1
	eta = 2*(beta-e.Beta0)/e.DAlpha - 1
	const tol = 1e-9
	ok = xi >= -1-tol && xi <= 1+tol && eta >= -1-tol && eta <= 1+tol
	return xi, eta, ok
}

// lagrangeWeights evaluates the GLL cardinal functions at reference
// coordinate x.
func lagrangeWeights(nodes []float64, x float64, w []float64) {
	np := len(nodes)
	for i := 0; i < np; i++ {
		l := 1.0
		for j := 0; j < np; j++ {
			if j != i {
				l *= (x - nodes[j]) / (nodes[i] - nodes[j])
			}
		}
		w[i] = l
	}
}

// AdvectTracer advances tracer q of the state one semi-Lagrangian step
// using the state's winds, then applies the global mass fixer. Levels
// advect independently with their own winds.
func (sl *SLTransport) AdvectTracer(s *Solver, st *State, q int, dt float64) {
	m := sl.m
	np := m.Np
	npsq := np * np
	nlev := s.Cfg.Nlev

	// Mixing ratio snapshot (interpolate q, not qdp: dp is not advected
	// by the SL step).
	mix := make([][]float64, m.NElems())
	for ei := range mix {
		mix[ei] = make([]float64, nlev*npsq)
		qdp := st.QdpAt(ei, q)
		for i := range mix[ei] {
			mix[ei][i] = qdp[i] / st.DP[ei][i]
		}
	}
	mass0 := s.TracerMass(st, q)

	wx := make([]float64, np)
	wy := make([]float64, np)
	for ei, e := range m.Elements {
		qdp := st.QdpAt(ei, q)
		for k := 0; k < nlev; k++ {
			o := k * npsq
			for n := 0; n < npsq; n++ {
				dp := departure(e.Pos[n], st.U[ei][o+n], st.V[ei][o+n], dt)
				di, xi, eta := sl.locate(dp)
				lagrangeWeights(m.Xi, xi, wx)
				lagrangeWeights(m.Xi, eta, wy)
				val := 0.0
				src := mix[di]
				for j := 0; j < np; j++ {
					for i := 0; i < np; i++ {
						val += wy[j] * wx[i] * src[o+j*np+i]
					}
				}
				qdp[o+n] = val * st.DP[ei][o+n]
			}
		}
	}
	// DSS for continuity, then the proportional mass fixer.
	qf := make([][]float64, m.NElems())
	for ei := range qf {
		qf[ei] = st.QdpAt(ei, q)
	}
	s.DSSLevelMajor(qf)
	if mass1 := s.TracerMass(st, q); mass1 > 0 && mass0 > 0 {
		scale := mass0 / mass1
		for ei := range qf {
			for i := range qf[ei] {
				qf[ei][i] *= scale
			}
		}
	}
}

// GLLNodesForTest exposes the np=4 GLL nodes for white-box tests.
func GLLNodesForTest() ([]float64, []float64) { return mesh.GLL(4) }

// meshCubeToSphere re-exports the gnomonic map for white-box tests.
func meshCubeToSphere(face int, a, b float64) mesh.Vec3 { return mesh.CubeToSphere(face, a, b) }
