package dycore

import (
	"math"
	"testing"
)

// Golden regression test: a fixed configuration stepped a fixed number
// of times must land on recorded global diagnostics. This is the
// climate-modeling answer-changing guard — any change to operators,
// scans, remap, limiters, DSS weights, or stepping order that alters the
// trajectory shows up here even when all invariant tests still pass.
//
// Tolerances are 1e-9 relative (not bitwise) so benign platform
// differences in libm (math.Sin/Pow) don't trip it; a real algorithmic
// change moves these values by far more.
func TestGoldenBaroclinicTrajectory(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Nlev = 8
	cfg.Qsize = 1
	s, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := s.NewState()
	s.InitBaroclinicWave(st)
	s.InitCosineBellTracer(st, 0, math.Pi/2, 0.2, 0.6)
	for i := 0; i < 5; i++ {
		s.Step(st)
	}
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"total mass", s.TotalMass(st), 1.253880109438273e+06},
		{"total energy", s.TotalEnergy(st), 3.186625521849322e+10},
		{"max wind", s.MaxWind(st), 3.442698857362153e+01},
		{"tracer mass", s.TracerMass(st, 0), 3.308738404645977e+04},
		{"T[0][0]", st.T[0][0], 1.985732353525959e+02},
	}
	for _, c := range checks {
		if rel := math.Abs(c.got-c.want) / math.Abs(c.want); rel > 1e-9 {
			t.Errorf("%s = %.15e, golden %.15e (rel %g) — the answer changed; "+
				"if intentional, update the golden values", c.name, c.got, c.want, rel)
		}
	}
}
