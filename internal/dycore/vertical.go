package dycore

import (
	"fmt"
	"math"
)

// HybridCoord is the hybrid sigma-pressure vertical coordinate of CAM:
// the pressure at layer interface k is
//
//	p_int(k) = HyAI[k]*P0 + HyBI[k]*ps,   k = 0..Nlev (0 = model top)
//
// so layer thicknesses dp(k) = p_int(k+1) - p_int(k) respond to surface
// pressure through the HyBI increments.
type HybridCoord struct {
	Nlev int
	HyAI []float64 // pure-pressure interface coefficients, len Nlev+1
	HyBI []float64 // sigma interface coefficients, len Nlev+1
	HyAM []float64 // midpoint coefficients, len Nlev
	HyBM []float64
}

// NewHybridCoord builds an analytic CAM-like coordinate: eta varies
// linearly from eta_top = PTop/P0 to 1, the sigma part grows as
// ((eta-eta_top)/(1-eta_top))^1.6 so upper levels are pure pressure and
// lower levels follow the terrain, matching the qualitative shape of
// CAM's tabulated coefficients.
func NewHybridCoord(nlev int) *HybridCoord {
	if nlev < 2 {
		panic(fmt.Sprintf("dycore: nlev must be >= 2, got %d", nlev))
	}
	h := &HybridCoord{
		Nlev: nlev,
		HyAI: make([]float64, nlev+1),
		HyBI: make([]float64, nlev+1),
		HyAM: make([]float64, nlev),
		HyBM: make([]float64, nlev),
	}
	etaTop := PTop / P0
	for k := 0; k <= nlev; k++ {
		eta := etaTop + (1-etaTop)*float64(k)/float64(nlev)
		s := (eta - etaTop) / (1 - etaTop)
		b := pow16(s)
		h.HyBI[k] = b
		h.HyAI[k] = eta - b
	}
	for k := 0; k < nlev; k++ {
		h.HyAM[k] = (h.HyAI[k] + h.HyAI[k+1]) / 2
		h.HyBM[k] = (h.HyBI[k] + h.HyBI[k+1]) / 2
	}
	return h
}

// pow16 computes s^1.6 for s >= 0 (coefficient generation only).
func pow16(s float64) float64 {
	if s <= 0 {
		return 0
	}
	return math.Pow(s, 1.6)
}

// InterfacePressure fills pInt (len Nlev+1) with interface pressures for
// surface pressure ps.
func (h *HybridCoord) InterfacePressure(ps float64, pInt []float64) {
	for k := 0; k <= h.Nlev; k++ {
		pInt[k] = h.HyAI[k]*P0 + h.HyBI[k]*ps
	}
}

// ReferenceDP fills dp (len Nlev) with the reference layer thicknesses
// for surface pressure ps — the target grid of the vertical remap.
func (h *HybridCoord) ReferenceDP(ps float64, dp []float64) {
	for k := 0; k < h.Nlev; k++ {
		dp[k] = (h.HyAI[k+1]-h.HyAI[k])*P0 + (h.HyBI[k+1]-h.HyBI[k])*ps
	}
}

// Validate checks that the coordinate yields strictly positive layer
// thicknesses over a surface-pressure range (monotone interfaces).
func (h *HybridCoord) Validate(psMin, psMax float64) error {
	dp := make([]float64, h.Nlev)
	for _, ps := range []float64{psMin, psMax} {
		h.ReferenceDP(ps, dp)
		for k, d := range dp {
			if d <= 0 {
				return fmt.Errorf("dycore: non-positive layer thickness %g at level %d for ps=%g", d, k, ps)
			}
		}
	}
	return nil
}
