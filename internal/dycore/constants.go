// Package dycore implements a miniature HOMME: the spectral-element
// dynamical core of CAM-SE on the cubed sphere, with the exact kernel
// inventory of Table 1 of the paper — compute_and_apply_rhs, euler_step
// (SSP-RK2 tracer advection), vertical_remap (PPM), hypervis_dp1/dp2 and
// biharmonic_dp3d — plus the hydrostatic/vertical scans that the Sunway
// redesign parallelizes with register communication.
//
// The equations are the hydrostatic primitive equations in
// vector-invariant form on floating Lagrangian levels:
//
//	dv/dt = -(zeta + f) k x v - grad(KE) - grad(Phi) - (R Tv / p) grad(p)
//	dT/dt = -v . grad(T) + (kappa T / p) omega
//	d(dp)/dt = -div(v dp)
//	d(q dp)/dt = -div(v q dp)          (tracers, in euler_step)
//
// with periodic vertical remap back to the reference hybrid levels.
package dycore

// Physical constants (CAM values).
const (
	Rd     = 287.04   // dry-air gas constant, J/kg/K
	Cp     = 1004.64  // dry-air heat capacity at constant pressure, J/kg/K
	Kappa  = Rd / Cp  // Poisson constant
	Gravit = 9.80616  // gravitational acceleration, m/s^2
	Omega  = 7.292e-5 // Earth's angular velocity, rad/s
	Rearth = 6.376e6  // Earth radius, m
	P0     = 100000.0 // reference surface pressure, Pa
	PTop   = 219.4    // model-top pressure, Pa (CAM 30-level top ~2.194 hPa x 100)
)

// Rrearth is the reciprocal Earth radius, the factor every horizontal
// derivative picks up when metric terms are kept on the unit sphere.
const Rrearth = 1.0 / Rearth
