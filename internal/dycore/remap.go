package dycore

import (
	"fmt"
	"math"
)

// Vertical remap (Table 1 row 3): after several dynamics steps on
// floating Lagrangian levels the layer thicknesses dp have deformed; the
// state is remapped back to the reference hybrid levels with the
// monotonic piecewise parabolic method (PPM) of Colella & Woodward, the
// scheme CAM-SE uses (remap_Q_ppm). The remap is written as a
// cumulative-mass interpolation, which makes it exactly conservative.

// ppmCoef holds the reconstruction of one source column: for each cell,
// the left edge value, the jump aR-aL, and the curvature a6.
type ppmCoef struct {
	aL, da, a6 []float64
}

// RemapWorkspace holds the PPM reconstruction scratch for columns of one
// fixed length, so steady-state remap calls are allocation-free. One
// workspace serves one goroutine at a time; callers that remap columns
// concurrently hold one workspace each.
type RemapWorkspace struct {
	coef        ppmCoef
	slope, edge []float64
	cum         []float64
}

// NewRemapWorkspace allocates scratch for columns of nlev cells.
func NewRemapWorkspace(nlev int) *RemapWorkspace {
	return &RemapWorkspace{
		coef: ppmCoef{
			aL: make([]float64, nlev),
			da: make([]float64, nlev),
			a6: make([]float64, nlev),
		},
		slope: make([]float64, nlev),
		edge:  make([]float64, nlev+1),
		cum:   make([]float64, nlev+1),
	}
}

// buildPPM reconstructs monotonic parabolas for cell averages a on cell
// widths dp (Colella & Woodward 1984, non-uniform grid). Boundary cells
// fall back to piecewise-constant, as HOMME's remap does at the model
// top and surface. slope (len n) and edge (len n+1) are caller scratch.
func buildPPM(dp, a []float64, c *ppmCoef, slope, edge []float64) {
	n := len(a)
	// Limited slopes (CW84 eq. 1.7-1.8).
	for j := range slope {
		slope[j] = 0
	}
	for j := 1; j < n-1; j++ {
		dm, d0, dp1 := dp[j-1], dp[j], dp[j+1]
		s := d0 / (dm + d0 + dp1) *
			((2*dm+d0)/(dp1+d0)*(a[j+1]-a[j]) + (d0+2*dp1)/(dm+d0)*(a[j]-a[j-1]))
		if (a[j+1]-a[j])*(a[j]-a[j-1]) > 0 {
			lim := math.Min(math.Abs(s), 2*math.Abs(a[j]-a[j-1]))
			lim = math.Min(lim, 2*math.Abs(a[j+1]-a[j]))
			slope[j] = math.Copysign(lim, s)
		}
	}
	// Edge values between cells j and j+1 (CW84 eq. 1.6).
	for j := 1; j < n-2; j++ {
		dm, d0, d1, d2 := dp[j-1], dp[j], dp[j+1], dp[j+2]
		sum := dm + d0 + d1 + d2
		e := a[j] + d0/(d0+d1)*(a[j+1]-a[j]) +
			1/sum*(2*d1*d0/(d0+d1)*((dm+d0)/(2*d0+d1)-(d2+d1)/(2*d1+d0))*(a[j+1]-a[j])-
				d0*(dm+d0)/(2*d0+d1)*slope[j+1]+
				d1*(d1+d2)/(d0+2*d1)*slope[j])
		edge[j+1] = e
	}
	// Low-order edges near the column boundaries.
	edge[0] = a[0]
	edge[1] = (a[0]*dp[1] + a[1]*dp[0]) / (dp[0] + dp[1])
	if n >= 2 {
		edge[n-1] = (a[n-2]*dp[n-1] + a[n-1]*dp[n-2]) / (dp[n-2] + dp[n-1])
	}
	edge[n] = a[n-1]

	for j := 0; j < n; j++ {
		aL, aR := edge[j], edge[j+1]
		// Monotonize the parabola (CW84 eq. 1.10).
		if (aR-a[j])*(a[j]-aL) <= 0 {
			aL, aR = a[j], a[j]
		} else {
			d := aR - aL
			a6 := 6*a[j] - 3*(aL+aR)
			if d*a6 > d*d {
				aL = 3*a[j] - 2*aR
			} else if -d*d > d*a6 {
				aR = 3*a[j] - 2*aL
			}
		}
		c.aL[j] = aL
		c.da[j] = aR - aL
		c.a6[j] = 6*a[j] - 3*(aL+aR)
	}
}

// cellMass integrates the parabola of cell j from its left edge to
// fraction x in [0,1] of its width, returning mass (value * thickness).
func (c *ppmCoef) cellMass(j int, dp, x float64) float64 {
	x2 := x * x
	return dp * (c.aL[j]*x + c.da[j]*x2/2 + c.a6[j]*(x2/2-x2*x/3))
}

// RemapPPM remaps cell averages a from source thicknesses dpS onto
// target thicknesses dpT (same column total within roundoff), storing
// target averages in out. It is exactly conservative: the cumulative
// mass at the column bottom is reproduced to roundoff. The convenience
// wrapper allocates a workspace per call; steady-state callers hold a
// RemapWorkspace and use its method instead.
func RemapPPM(dpS, a, dpT, out []float64) {
	NewRemapWorkspace(len(a)).RemapPPM(dpS, a, dpT, out)
}

// RemapPPM is the allocation-free remap: identical arithmetic to the
// package-level function, with the reconstruction scratch taken from the
// workspace (which must have been sized for len(a) cells).
func (rw *RemapWorkspace) RemapPPM(dpS, a, dpT, out []float64) {
	n := len(a)
	if len(dpS) != n || len(dpT) != len(out) {
		panic("dycore: RemapPPM length mismatch")
	}
	if len(rw.coef.aL) != n {
		panic("dycore: RemapWorkspace sized for a different column length")
	}
	var totS, totT float64
	for _, d := range dpS {
		totS += d
	}
	for _, d := range dpT {
		totT += d
	}
	if math.Abs(totS-totT) > 1e-8*math.Max(totS, 1) {
		panic(fmt.Sprintf("dycore: RemapPPM column totals differ: %g vs %g", totS, totT))
	}

	c := &rw.coef
	buildPPM(dpS, a, c, rw.slope, rw.edge)

	// Cumulative source mass at source interfaces.
	cum := rw.cum
	cum[0] = 0
	for j := 0; j < n; j++ {
		cum[j+1] = cum[j] + a[j]*dpS[j]
	}
	// Walk target interfaces through the source column, evaluating the
	// cumulative mass with the parabola inside the containing cell.
	massAt := func(z float64) float64 {
		if z <= 0 {
			return 0
		}
		// Find containing source cell.
		zl := 0.0
		for j := 0; j < n; j++ {
			zr := zl + dpS[j]
			if z <= zr || j == n-1 {
				x := (z - zl) / dpS[j]
				if x > 1 {
					x = 1
				}
				return cum[j] + c.cellMass(j, dpS[j], x)
			}
			zl = zr
		}
		return cum[n]
	}
	zt := 0.0
	mPrev := 0.0
	for j := range dpT {
		zt += dpT[j]
		var m float64
		if j == len(dpT)-1 {
			m = cum[n] // exact conservation at the column end
		} else {
			m = massAt(zt)
		}
		out[j] = (m - mPrev) / dpT[j]
		mPrev = m
	}
}

// RemapStateElem remaps one element's state from its deformed Lagrangian
// thicknesses back to the reference hybrid grid: velocities and
// temperature as mass-weighted averages (conserving momentum and
// internal energy), tracers as masses, then resets DP to the reference.
// Column scratch buffers (len nlev) and the PPM workspace are supplied
// by the caller, so warmed callers remap without heap allocation.
func RemapStateElem(h *HybridCoord, np, nlev, qsize int,
	u, v, tt, dp, qdp []float64,
	colSrc, colVal, colRef, colOut []float64, rw *RemapWorkspace) {
	npsq := np * np
	for n := 0; n < npsq; n++ {
		// Deformed column and its implied surface pressure.
		ps := PTop
		for k := 0; k < nlev; k++ {
			colSrc[k] = dp[k*npsq+n]
			ps += colSrc[k]
		}
		h.ReferenceDP(ps, colRef)

		remapField := func(f []float64) {
			for k := 0; k < nlev; k++ {
				colVal[k] = f[k*npsq+n]
			}
			rw.RemapPPM(colSrc, colVal, colRef, colOut)
			for k := 0; k < nlev; k++ {
				f[k*npsq+n] = colOut[k]
			}
		}
		remapField(u)
		remapField(v)
		remapField(tt)
		for q := 0; q < qsize; q++ {
			// Tracers advect as mass qdp; remap the mixing ratio
			// q = qdp/dp (a cell average) and rebuild mass on the
			// reference grid.
			base := q * nlev * npsq
			for k := 0; k < nlev; k++ {
				colVal[k] = qdp[base+k*npsq+n] / colSrc[k]
			}
			rw.RemapPPM(colSrc, colVal, colRef, colOut)
			for k := 0; k < nlev; k++ {
				qdp[base+k*npsq+n] = colOut[k] * colRef[k]
			}
		}
		for k := 0; k < nlev; k++ {
			dp[k*npsq+n] = colRef[k]
		}
	}
}
