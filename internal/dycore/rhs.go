package dycore

import (
	"math"

	"swcam/internal/mesh"
)

// Workspace holds preallocated per-element scratch for the RHS kernels,
// sized for one element at a time; kernels must not retain it.
type Workspace struct {
	np, nlev int
	pInt     []float64 // interface pressures, (nlev+1) per node (node-major)
	pMid     []float64 // midpoint pressures, level-major slabs
	phi      []float64 // midpoint geopotential
	divDp    []float64 // div(v dp) per level
	cumDiv   []float64 // vertical running sum of divDp
	omegaP   []float64 // omega/p
	ke       []float64
	vort     []float64
	gx, gy   []float64
	gpx, gpy []float64
	tx, ty   []float64
	flxU     []float64
	flxV     []float64
	s1, s2   []float64 // slab scratch for the differential operators
}

// NewWorkspace allocates scratch for elements with the given dimensions.
func NewWorkspace(np, nlev int) *Workspace {
	npsq := np * np
	return &Workspace{
		np: np, nlev: nlev,
		pInt:   make([]float64, (nlev+1)*npsq),
		pMid:   make([]float64, nlev*npsq),
		phi:    make([]float64, nlev*npsq),
		divDp:  make([]float64, nlev*npsq),
		cumDiv: make([]float64, nlev*npsq),
		omegaP: make([]float64, nlev*npsq),
		ke:     make([]float64, npsq),
		vort:   make([]float64, npsq),
		gx:     make([]float64, npsq),
		gy:     make([]float64, npsq),
		gpx:    make([]float64, npsq),
		gpy:    make([]float64, npsq),
		tx:     make([]float64, npsq),
		ty:     make([]float64, npsq),
		flxU:   make([]float64, npsq),
		flxV:   make([]float64, npsq),
		s1:     make([]float64, npsq),
		s2:     make([]float64, npsq),
	}
}

// PressureScans fills the workspace pInt/pMid arrays from the layer
// thicknesses of one element: the vertical prefix-sum the paper
// parallelizes over the CPE mesh with register communication (§7.4).
// dp is level-major; pInt is stored node-major ((nlev+1) values per node)
// because it is consumed column-wise.
func (w *Workspace) PressureScans(dp []float64) {
	np, nlev := w.np, w.nlev
	npsq := np * np
	for n := 0; n < npsq; n++ {
		p := PTop
		w.pInt[n*(nlev+1)] = p
		for k := 0; k < nlev; k++ {
			d := dp[k*npsq+n]
			w.pMid[k*npsq+n] = p + d/2
			p += d
			w.pInt[n*(nlev+1)+k+1] = p
		}
	}
}

// GeopotentialScan fills phi with midpoint geopotential by hydrostatic
// integration upward from the surface — the second §7.4-style scan:
//
//	phi_int(nlev) = phis
//	phi_int(k)   = phi_int(k+1) + Rd T(k) dp(k) / pMid(k)
//	phi(k)       = phi_int(k+1) + Rd T(k) dp(k) / (2 pMid(k))
func (w *Workspace) GeopotentialScan(tt, dp, phis []float64) {
	np, nlev := w.np, w.nlev
	npsq := np * np
	for n := 0; n < npsq; n++ {
		phiInt := phis[n]
		for k := nlev - 1; k >= 0; k-- {
			dphi := Rd * tt[k*npsq+n] * dp[k*npsq+n] / w.pMid[k*npsq+n]
			w.phi[k*npsq+n] = phiInt + dphi/2
			phiInt += dphi
		}
	}
}

// RHS holds the tendencies produced by ComputeAndApplyRHSElem for one
// element (level-major like the state).
type RHS struct {
	Ut, Vt, Tt, DPt []float64
}

// NewRHS allocates tendency storage for one element.
func NewRHS(np, nlev int) *RHS {
	n := np * np * nlev
	return &RHS{
		Ut:  make([]float64, n),
		Vt:  make([]float64, n),
		Tt:  make([]float64, n),
		DPt: make([]float64, n),
	}
}

// ComputeAndApplyRHSElem evaluates the primitive-equation right-hand side
// for one element and applies it: out = base + dt * RHS(cur). This is
// the element-local body of CAM-SE's compute_and_apply_rhs (Table 1 row
// 1); the caller applies DSS to the out fields afterwards, completing the
// "apply DSS" part of the kernel.
//
// cur and base may be the same element slices. All slices are level-major.
func ComputeAndApplyRHSElem(e *mesh.Element, derivFlat []float64, w *Workspace, rhs *RHS,
	curU, curV, curT, curDP, phis []float64,
	baseU, baseV, baseT, baseDP []float64,
	outU, outV, outT, outDP []float64,
	dt float64) {

	np, nlev := w.np, w.nlev
	npsq := np * np

	// Vertical scans: pressure and geopotential.
	w.PressureScans(curDP)
	w.GeopotentialScan(curT, curDP, phis)

	// Per-level horizontal terms; divDp feeds the omega scan below.
	for k := 0; k < nlev; k++ {
		o := k * npsq
		uk, vk := curU[o:o+npsq], curV[o:o+npsq]
		// Mass flux and its divergence.
		for n := 0; n < npsq; n++ {
			w.flxU[n] = uk[n] * curDP[o+n]
			w.flxV[n] = vk[n] * curDP[o+n]
		}
		DivergenceSlab(derivFlat, e.DinvFlat, e.Metdet, e.DAlpha, np,
			w.flxU, w.flxV, w.divDp[o:o+npsq], w.s1, w.s2)
	}

	// Omega scan: omega(k) = v.grad(p)(k) - [sum_{l<k} divDp(l) + divDp(k)/2].
	// The cumulative sum is the third vertical dependency chain of §7.4.
	for n := 0; n < npsq; n++ {
		run := 0.0
		for k := 0; k < nlev; k++ {
			w.cumDiv[k*npsq+n] = run + w.divDp[k*npsq+n]/2
			run += w.divDp[k*npsq+n]
		}
	}

	for k := 0; k < nlev; k++ {
		o := k * npsq
		uk, vk := curU[o:o+npsq], curV[o:o+npsq]
		tk := curT[o : o+npsq]

		// Kinetic energy + geopotential gradient (vector-invariant form).
		for n := 0; n < npsq; n++ {
			w.ke[n] = (uk[n]*uk[n]+vk[n]*vk[n])/2 + w.phi[o+n]
		}
		GradientSlab(derivFlat, e.DinvFlat, e.DAlpha, np, w.ke, w.gx, w.gy, w.s1, w.s2)
		// Pressure gradient at the level.
		GradientSlab(derivFlat, e.DinvFlat, e.DAlpha, np, w.pMid[o:o+npsq], w.gpx, w.gpy, w.s1, w.s2)
		// Temperature gradient for horizontal advection.
		GradientSlab(derivFlat, e.DinvFlat, e.DAlpha, np, tk, w.tx, w.ty, w.s1, w.s2)
		// Relative vorticity.
		VorticitySlab(derivFlat, e.DFlat, e.Metdet, e.DAlpha, np, uk, vk, w.vort, w.s1, w.s2)

		for n := 0; n < npsq; n++ {
			f := 2 * Omega * math.Sin(e.Lat[n]) // Coriolis parameter
			absv := w.vort[n] + f
			p := w.pMid[o+n]
			vgradP := uk[n]*w.gpx[n] + vk[n]*w.gpy[n]
			omega := vgradP - w.cumDiv[o+n]
			w.omegaP[o+n] = omega / p

			rhs.Ut[o+n] = absv*vk[n] - w.gx[n] - Rd*tk[n]/p*w.gpx[n]
			rhs.Vt[o+n] = -absv*uk[n] - w.gy[n] - Rd*tk[n]/p*w.gpy[n]
			rhs.Tt[o+n] = -(uk[n]*w.tx[n] + vk[n]*w.ty[n]) + Kappa*tk[n]*w.omegaP[o+n]
			rhs.DPt[o+n] = -w.divDp[o+n]
		}
	}

	// Apply: out = base + dt * tendency.
	for i := 0; i < nlev*npsq; i++ {
		outU[i] = baseU[i] + dt*rhs.Ut[i]
		outV[i] = baseV[i] + dt*rhs.Vt[i]
		outT[i] = baseT[i] + dt*rhs.Tt[i]
		outDP[i] = baseDP[i] + dt*rhs.DPt[i]
	}
}
