package dycore

import "testing"

func benchSolver(b *testing.B, ne, nlev, qsize int) (*Solver, *State) {
	b.Helper()
	cfg := DefaultConfig(ne)
	cfg.Nlev = nlev
	cfg.Qsize = qsize
	s, err := NewSolver(cfg)
	if err != nil {
		b.Fatal(err)
	}
	st := s.NewState()
	s.InitBaroclinicWave(st)
	return s, st
}

func BenchmarkComputeAndApplyRHS(b *testing.B) {
	s, st := benchSolver(b, 2, 16, 0)
	out := st.Clone()
	ws := NewWorkspace(4, 16)
	rhs := NewRHS(4, 16)
	e := s.Mesh.Elements[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeAndApplyRHSElem(e, s.Mesh.DerivFlat, ws, rhs,
			st.U[0], st.V[0], st.T[0], st.DP[0], st.Phis[0],
			st.U[0], st.V[0], st.T[0], st.DP[0],
			out.U[0], out.V[0], out.T[0], out.DP[0], 60)
	}
}

func BenchmarkEulerStepElem(b *testing.B) {
	s, st := benchSolver(b, 2, 16, 1)
	e := s.Mesh.Elements[0]
	flxU := make([]float64, 16)
	flxV := make([]float64, 16)
	div := make([]float64, 16)
	gv1 := make([]float64, 16)
	gv2 := make([]float64, 16)
	qdp := st.QdpAt(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EulerStepElem(e, s.Mesh.DerivFlat, 4, 16, st.U[0], st.V[0], qdp, qdp, 60, flxU, flxV, div, gv1, gv2)
	}
}

func BenchmarkRemapPPMColumn(b *testing.B) {
	const n = 128
	dpS := make([]float64, n)
	dpT := make([]float64, n)
	a := make([]float64, n)
	out := make([]float64, n)
	for i := range dpS {
		dpS[i] = 1 + 0.1*float64(i%7)
		dpT[i] = dpS[(i+3)%n]
		a[i] = float64(i % 13)
	}
	var totS, totT float64
	for i := range dpS {
		totS += dpS[i]
		totT += dpT[i]
	}
	for i := range dpT {
		dpT[i] *= totS / totT
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RemapPPM(dpS, a, dpT, out)
	}
}

func BenchmarkFullStepNe4(b *testing.B) {
	s, st := benchSolver(b, 4, 8, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(st)
	}
}

func BenchmarkShallowWaterStep(b *testing.B) {
	s, err := NewSWSolver(4, 600)
	if err != nil {
		b.Fatal(err)
	}
	st := s.NewState()
	s.InitRossbyHaurwitz(st)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(st)
	}
}
