package dycore

import (
	"errors"
	"math"
	"testing"
)

func healthyState(t *testing.T) (*Solver, *State) {
	t.Helper()
	cfg := DefaultConfig(2)
	cfg.Nlev = 4
	cfg.Qsize = 1
	s, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := s.NewState()
	s.InitBaroclinicWave(st)
	return s, st
}

func TestCheckAcceptsHealthyState(t *testing.T) {
	_, st := healthyState(t)
	if err := st.Check(500); err != nil {
		t.Fatalf("healthy state rejected: %v", err)
	}
	if err := st.Check(0); err != nil { // wind guard disabled
		t.Fatalf("healthy state rejected with guard off: %v", err)
	}
}

func TestCheckDetectsBlowups(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(st *State)
	}{
		{"nan wind", func(st *State) { st.U[1][3] = math.NaN() }},
		{"inf wind", func(st *State) { st.V[0][0] = math.Inf(1) }},
		{"cfl wind", func(st *State) { st.U[2][5] = 1e4 }},
		{"nan temperature", func(st *State) { st.T[0][7] = math.NaN() }},
		{"negative temperature", func(st *State) { st.T[3][2] = -5 }},
		{"nan dp", func(st *State) { st.DP[1][1] = math.NaN() }},
		{"negative dp", func(st *State) { st.DP[0][4] = -1 }},
		{"zero dp", func(st *State) { st.DP[0][4] = 0 }},
		{"nan tracer", func(st *State) { st.Qdp[2][0] = math.NaN() }},
		{"inf phis", func(st *State) { st.Phis[0][0] = math.Inf(-1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, st := healthyState(t)
			tc.mutate(st)
			err := st.Check(500)
			if !errors.Is(err, ErrUnstable) {
				t.Fatalf("blowup undetected: %v", err)
			}
		})
	}
}

func TestCheckDoesNotModifyState(t *testing.T) {
	_, st := healthyState(t)
	before := st.Clone()
	_ = st.Check(500)
	st.U[0][0] = math.NaN()
	_ = st.Check(500)
	st.U[0][0] = before.U[0][0]
	if d := st.MaxAbsDiff(before); d != 0 {
		t.Fatalf("Check modified the state by %g", d)
	}
}

func TestCFLMaxWind(t *testing.T) {
	cfg := DefaultConfig(4)
	w := cfg.CFLMaxWind(0.8)
	if w <= 0 || math.IsNaN(w) {
		t.Fatalf("CFL bound %g", w)
	}
	// Halving dt doubles the admissible speed.
	cfg2 := cfg
	cfg2.Dt = cfg.Dt / 2
	if w2 := cfg2.CFLMaxWind(0.8); math.Abs(w2-2*w) > 1e-9*w {
		t.Fatalf("CFL bound does not scale with 1/dt: %g vs %g", w2, w)
	}
	// The default configuration's baroclinic-wave winds (tens of m/s)
	// must sit far inside the guard, or the watchdog would false-alarm.
	if w < 100 {
		t.Fatalf("CFL guard %g m/s would false-alarm on ordinary flows", w)
	}
}
