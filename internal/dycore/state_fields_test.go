package dycore

import (
	"reflect"
	"testing"
)

// TestFieldsCoversEveryArray pins Fields() to the struct definition: a
// new [][]float64 field added to State without a matching Fields()
// entry would silently escape integrity seals and state hashes.
func TestFieldsCoversEveryArray(t *testing.T) {
	st := NewState(2, 2, 3, 1)
	named := st.Fields()
	byName := map[string][][]float64{}
	for _, f := range named {
		byName[f.Name] = f.Data
	}

	rv := reflect.ValueOf(*st)
	rt := rv.Type()
	arrays := 0
	for i := 0; i < rt.NumField(); i++ {
		if rt.Field(i).Type != reflect.TypeOf([][]float64(nil)) {
			continue
		}
		arrays++
		data, ok := byName[rt.Field(i).Name]
		if !ok {
			t.Fatalf("State field %s missing from Fields()", rt.Field(i).Name)
		}
		// Same backing array, not a copy: mutate through the struct,
		// observe through the walk.
		fv := rv.Field(i).Interface().([][]float64)
		if len(fv) == 0 || len(fv[0]) == 0 {
			t.Fatalf("State field %s empty in test state", rt.Field(i).Name)
		}
		fv[0][0] = 42.5
		if data[0][0] != 42.5 {
			t.Fatalf("Fields() entry %s does not alias the state", rt.Field(i).Name)
		}
		fv[0][0] = 0
	}
	if arrays != len(named) {
		t.Fatalf("Fields() returns %d entries, struct has %d [][]float64 fields", len(named), arrays)
	}
}
