package dycore

import (
	"math"
	"testing"
)

// FuzzRemapPPM: for arbitrary positive grids with matched totals, the
// remap must conserve mass exactly and never panic or produce NaN.
func FuzzRemapPPM(f *testing.F) {
	f.Add(uint8(8), 1.0, 2.0, 0.5)
	f.Add(uint8(30), 0.1, 5.0, -3.0)
	f.Add(uint8(3), 2.0, 2.0, 100.0)
	f.Fuzz(func(t *testing.T, nRaw uint8, w1, w2, amp float64) {
		n := 2 + int(nRaw)%62
		if math.IsNaN(w1) || math.IsNaN(w2) || math.IsNaN(amp) ||
			math.IsInf(w1, 0) || math.IsInf(w2, 0) || math.IsInf(amp, 0) {
			t.Skip()
		}
		// Build strictly positive widths from the fuzzed scales.
		pos := func(x float64, i int) float64 {
			v := math.Abs(x)*(1+0.3*math.Sin(float64(i))) + 0.1
			if v > 1e6 {
				v = 1e6
			}
			return v
		}
		dpS := make([]float64, n)
		dpT := make([]float64, n)
		a := make([]float64, n)
		var totS, totT float64
		for i := 0; i < n; i++ {
			dpS[i] = pos(w1, i)
			dpT[i] = pos(w2, i+7)
			totS += dpS[i]
			totT += dpT[i]
			if math.Abs(amp) < 1e15 {
				a[i] = amp * math.Cos(float64(3*i))
			}
		}
		for i := range dpT {
			dpT[i] *= totS / totT
		}
		out := make([]float64, n)
		RemapPPM(dpS, a, dpT, out)
		var mS, mT float64
		for i := 0; i < n; i++ {
			if math.IsNaN(out[i]) {
				t.Fatalf("NaN in remap output at %d", i)
			}
			mS += a[i] * dpS[i]
			mT += out[i] * dpT[i]
		}
		if math.Abs(mS-mT) > 1e-8*(1+math.Abs(mS)) {
			t.Fatalf("mass not conserved: %g -> %g", mS, mT)
		}
	})
}
