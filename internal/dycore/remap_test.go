package dycore

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRemapIdentityOnSameGrid(t *testing.T) {
	dp := []float64{10, 20, 30, 25, 15}
	a := []float64{1, 3, 2, 5, 4}
	out := make([]float64, 5)
	RemapPPM(dp, a, dp, out)
	for i := range a {
		if math.Abs(out[i]-a[i]) > 1e-12 {
			t.Fatalf("identity remap changed cell %d: %v -> %v", i, a[i], out[i])
		}
	}
}

func TestRemapConservesMass(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(30)
		dpS := make([]float64, n)
		dpT := make([]float64, n)
		a := make([]float64, n)
		totS := 0.0
		for i := range dpS {
			dpS[i] = 0.5 + rng.Float64()
			totS += dpS[i]
			a[i] = rng.NormFloat64()
		}
		// A different positive target grid with the same total.
		totT := 0.0
		for i := range dpT {
			dpT[i] = 0.5 + rng.Float64()
			totT += dpT[i]
		}
		for i := range dpT {
			dpT[i] *= totS / totT
		}
		out := make([]float64, n)
		RemapPPM(dpS, a, dpT, out)
		var mS, mT float64
		for i := range a {
			mS += a[i] * dpS[i]
			mT += out[i] * dpT[i]
		}
		if math.Abs(mS-mT) > 1e-10*(1+math.Abs(mS)) {
			t.Fatalf("trial %d: mass %v -> %v", trial, mS, mT)
		}
	}
}

func TestRemapPreservesConstant(t *testing.T) {
	dpS := []float64{5, 10, 15, 10, 5, 20}
	dpT := []float64{10, 10, 10, 10, 10, 15}
	a := []float64{7, 7, 7, 7, 7, 7}
	out := make([]float64, len(a))
	RemapPPM(dpS, a, dpT, out)
	for i, v := range out {
		if math.Abs(v-7) > 1e-12 {
			t.Fatalf("constant not preserved at %d: %v", i, v)
		}
	}
}

func TestRemapMonotone(t *testing.T) {
	// Monotone input data must produce no new extrema (the PPM limiter).
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 10 + rng.Intn(20)
		dpS := make([]float64, n)
		dpT := make([]float64, n)
		a := make([]float64, n)
		tot := 0.0
		run := 0.0
		for i := range a {
			dpS[i] = 0.5 + rng.Float64()
			tot += dpS[i]
			run += rng.Float64()
			a[i] = run // nondecreasing
		}
		tt := 0.0
		for i := range dpT {
			dpT[i] = 0.5 + rng.Float64()
			tt += dpT[i]
		}
		for i := range dpT {
			dpT[i] *= tot / tt
		}
		out := make([]float64, n)
		RemapPPM(dpS, a, dpT, out)
		lo, hi := a[0], a[n-1]
		for i, v := range out {
			if v < lo-1e-10 || v > hi+1e-10 {
				t.Fatalf("trial %d: overshoot at %d: %v outside [%v,%v]", trial, i, v, lo, hi)
			}
		}
	}
}

func TestRemapLinearProfileHighAccuracy(t *testing.T) {
	// A linear-in-z profile should be reproduced almost exactly away from
	// the boundary cells (parabolas represent linears exactly).
	n := 40
	dpS := make([]float64, n)
	dpT := make([]float64, n)
	a := make([]float64, n)
	zc := 0.0
	for i := range a {
		dpS[i] = 1
		dpT[i] = 1 + 0.3*math.Sin(float64(i)) // same total? fix below
		a[i] = 2*(zc+0.5) + 1                 // linear in cell centre
		zc++
	}
	tot := 0.0
	for _, d := range dpT {
		tot += d
	}
	for i := range dpT {
		dpT[i] *= float64(n) / tot
	}
	out := make([]float64, n)
	RemapPPM(dpS, a, dpT, out)
	// Check target cell averages against the exact linear integral.
	zl := 0.0
	for i := range out {
		zr := zl + dpT[i]
		exact := (zr*zr - zl*zl + (zr - zl)) / dpT[i] // avg of 2z+1
		if i > 2 && i < n-3 {
			if math.Abs(out[i]-exact) > 1e-10 {
				t.Fatalf("linear profile wrong at %d: %v vs %v", i, out[i], exact)
			}
		}
		zl = zr
	}
}

func TestRemapPanicsOnTotalMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("total mismatch accepted")
		}
	}()
	RemapPPM([]float64{1, 1}, []float64{1, 1}, []float64{1, 2}, make([]float64, 2))
}

// Property test: remap then remap back conserves mass exactly and damps
// (never amplifies) the max norm for arbitrary data.
func TestRemapRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(12)
		dpS := make([]float64, n)
		dpT := make([]float64, n)
		a := make([]float64, n)
		tot := 0.0
		for i := range a {
			dpS[i] = 0.2 + rng.Float64()
			tot += dpS[i]
			a[i] = rng.NormFloat64() * 10
		}
		tt := 0.0
		for i := range dpT {
			dpT[i] = 0.2 + rng.Float64()
			tt += dpT[i]
		}
		for i := range dpT {
			dpT[i] *= tot / tt
		}
		mid := make([]float64, n)
		back := make([]float64, n)
		RemapPPM(dpS, a, dpT, mid)
		RemapPPM(dpT, mid, dpS, back)
		var m0, m2, amax, bmax float64
		for i := range a {
			m0 += a[i] * dpS[i]
			m2 += back[i] * dpS[i]
			if v := math.Abs(a[i]); v > amax {
				amax = v
			}
			if v := math.Abs(back[i]); v > bmax {
				bmax = v
			}
		}
		return math.Abs(m0-m2) < 1e-9*(1+math.Abs(m0)) && bmax <= amax+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHybridCoordBasics(t *testing.T) {
	for _, nlev := range []int{4, 30, 128} {
		h := NewHybridCoord(nlev)
		if err := h.Validate(0.5*P0, 1.1*P0); err != nil {
			t.Fatalf("nlev=%d: %v", nlev, err)
		}
		pInt := make([]float64, nlev+1)
		h.InterfacePressure(P0, pInt)
		if math.Abs(pInt[0]-PTop) > 1e-9 {
			t.Errorf("nlev=%d: top pressure %v, want %v", nlev, pInt[0], PTop)
		}
		if math.Abs(pInt[nlev]-P0) > 1e-9 {
			t.Errorf("nlev=%d: surface pressure %v, want %v", nlev, pInt[nlev], P0)
		}
		for k := 0; k < nlev; k++ {
			if pInt[k+1] <= pInt[k] {
				t.Fatalf("nlev=%d: interfaces not monotone at %d", nlev, k)
			}
		}
		// dp from ReferenceDP must match interface differences.
		dp := make([]float64, nlev)
		h.ReferenceDP(P0, dp)
		for k := 0; k < nlev; k++ {
			if math.Abs(dp[k]-(pInt[k+1]-pInt[k])) > 1e-9 {
				t.Fatalf("nlev=%d: dp mismatch at %d", nlev, k)
			}
		}
	}
}

func TestRemapStateElemConservs(t *testing.T) {
	// Full element remap: mass, momentum, internal energy, tracer mass
	// per column are conserved.
	const np, nlev, qsize = 4, 12, 2
	h := NewHybridCoord(nlev)
	npsq := np * np
	rng := rand.New(rand.NewSource(5))
	u := make([]float64, nlev*npsq)
	v := make([]float64, nlev*npsq)
	tt := make([]float64, nlev*npsq)
	dp := make([]float64, nlev*npsq)
	qdp := make([]float64, qsize*nlev*npsq)
	ref := make([]float64, nlev)
	h.ReferenceDP(P0, ref)
	for n := 0; n < npsq; n++ {
		for k := 0; k < nlev; k++ {
			i := k*npsq + n
			dp[i] = ref[k] * (1 + 0.1*rng.NormFloat64()) // deformed
			if dp[i] < 0.1*ref[k] {
				dp[i] = 0.1 * ref[k]
			}
			u[i] = rng.NormFloat64() * 30
			v[i] = rng.NormFloat64() * 30
			tt[i] = 250 + 30*rng.Float64()
			for q := 0; q < qsize; q++ {
				qdp[q*nlev*npsq+i] = rng.Float64() * dp[i]
			}
		}
	}
	colMass := func(f, w []float64, n int) float64 {
		tot := 0.0
		for k := 0; k < nlev; k++ {
			tot += f[k*npsq+n] * w[k*npsq+n]
		}
		return tot
	}
	ones := make([]float64, nlev*npsq)
	for i := range ones {
		ones[i] = 1
	}
	type before struct{ mass, mom, en, q0 float64 }
	var b [16]before
	for n := 0; n < npsq; n++ {
		b[n] = before{
			mass: colMass(dp, ones, n),
			mom:  colMass(u, dp, n),
			en:   colMass(tt, dp, n),
			q0:   colMass(qdp[:nlev*npsq], ones, n),
		}
	}
	colA := make([]float64, nlev)
	colB := make([]float64, nlev)
	colC := make([]float64, nlev)
	colD := make([]float64, nlev)
	RemapStateElem(h, np, nlev, qsize, u, v, tt, dp, qdp, colA, colB, colC, colD, NewRemapWorkspace(nlev))
	for n := 0; n < npsq; n++ {
		if d := math.Abs(colMass(dp, ones, n) - b[n].mass); d > 1e-8*b[n].mass {
			t.Errorf("node %d: column mass changed by %g", n, d)
		}
		if d := math.Abs(colMass(u, dp, n) - b[n].mom); d > 1e-6*(1+math.Abs(b[n].mom)) {
			t.Errorf("node %d: column momentum changed by %g", n, d)
		}
		if d := math.Abs(colMass(tt, dp, n) - b[n].en); d > 1e-6*b[n].en {
			t.Errorf("node %d: column heat changed by %g", n, d)
		}
		if d := math.Abs(colMass(qdp[:nlev*npsq], ones, n) - b[n].q0); d > 1e-8*(1+b[n].q0) {
			t.Errorf("node %d: tracer mass changed by %g", n, d)
		}
	}
	// dp must now equal the reference grid for the (conserved) column ps.
	for n := 0; n < npsq; n++ {
		ps := PTop
		for k := 0; k < nlev; k++ {
			ps += dp[k*npsq+n]
		}
		want := make([]float64, nlev)
		h.ReferenceDP(ps, want)
		for k := 0; k < nlev; k++ {
			if math.Abs(dp[k*npsq+n]-want[k]) > 1e-8*want[k] {
				t.Fatalf("node %d level %d: dp not on reference grid", n, k)
			}
		}
	}
}
