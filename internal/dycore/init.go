package dycore

import "math"

// Initial conditions. Each initializer fills a State allocated with the
// solver's dimensions.

// InitRest sets an isothermal atmosphere at rest with uniform surface
// pressure and flat topography. The discrete RHS of this state is
// identically zero (gradients of horizontally uniform fields vanish
// exactly in the spectral-element basis), so it is the discrete
// steady-state test.
func (s *Solver) InitRest(st *State, t0 float64) {
	npsq := s.Cfg.Np * s.Cfg.Np
	dpRef := make([]float64, s.Cfg.Nlev)
	s.Hybrid.ReferenceDP(P0, dpRef)
	for ei := range s.Mesh.Elements {
		for k := 0; k < s.Cfg.Nlev; k++ {
			for n := 0; n < npsq; n++ {
				st.T[ei][k*npsq+n] = t0
				st.DP[ei][k*npsq+n] = dpRef[k]
			}
		}
		for i := range st.U[ei] {
			st.U[ei][i] = 0
			st.V[ei][i] = 0
		}
		for i := range st.Qdp[ei] {
			st.Qdp[ei][i] = 0
		}
		for n := range st.Phis[ei] {
			st.Phis[ei][n] = 0
		}
	}
}

// InitSolidBodyRotation superimposes a solid-body zonal flow of peak
// speed u0 (m/s at the equator) on a rest atmosphere — the classic
// advection test flow. alpha tilts the rotation axis from the pole
// (alpha=0 gives pure zonal flow).
func (s *Solver) InitSolidBodyRotation(st *State, t0, u0, alpha float64) {
	s.InitRest(st, t0)
	npsq := s.Cfg.Np * s.Cfg.Np
	ca, sa := math.Cos(alpha), math.Sin(alpha)
	for ei, e := range s.Mesh.Elements {
		for n := 0; n < npsq; n++ {
			lon, lat := e.Lon[n], e.Lat[n]
			u := u0 * (math.Cos(lat)*ca + math.Sin(lat)*math.Cos(lon)*sa)
			v := -u0 * math.Sin(lon) * sa
			for k := 0; k < s.Cfg.Nlev; k++ {
				st.U[ei][k*npsq+n] = u
				st.V[ei][k*npsq+n] = v
			}
		}
	}
}

// InitCosineBellTracer fills tracer q with a cosine bell of radius r0
// (radians) centred at (lonC, latC), as mixing ratio against the current
// dp — the standard solid-body advection target.
func (s *Solver) InitCosineBellTracer(st *State, q int, lonC, latC, r0 float64) {
	npsq := s.Cfg.Np * s.Cfg.Np
	cLat := math.Cos(latC)
	sLat := math.Sin(latC)
	for ei, e := range s.Mesh.Elements {
		qdp := st.QdpAt(ei, q)
		for n := 0; n < npsq; n++ {
			lon, lat := e.Lon[n], e.Lat[n]
			// Great-circle distance to the bell centre.
			cosd := sLat*math.Sin(lat) + cLat*math.Cos(lat)*math.Cos(lon-lonC)
			d := math.Acos(math.Max(-1, math.Min(1, cosd)))
			mix := 0.0
			if d < r0 {
				mix = 0.5 * (1 + math.Cos(math.Pi*d/r0))
			}
			for k := 0; k < s.Cfg.Nlev; k++ {
				qdp[k*npsq+n] = mix * st.DP[ei][k*npsq+n]
			}
		}
	}
}

// InitBaroclinicWave sets a balanced mid-latitude zonal jet with a small
// localized perturbation — a simplified Jablonowski-Williamson setup that
// develops a baroclinic wave over a few simulated days. It exercises all
// dycore kernels with realistic amplitudes.
func (s *Solver) InitBaroclinicWave(st *State) {
	const (
		u0    = 35.0  // jet peak, m/s
		t0    = 288.0 // surface temperature, K
		lapse = 0.005 // K/m tropospheric lapse rate
		pertU = 1.0   // perturbation amplitude, m/s
		lonP  = math.Pi / 9
		latP  = 2 * math.Pi / 9
		radP  = 0.1 // perturbation radius (radians of great circle)
	)
	npsq := s.Cfg.Np * s.Cfg.Np
	nlev := s.Cfg.Nlev
	dpRef := make([]float64, nlev)
	s.Hybrid.ReferenceDP(P0, dpRef)
	pInt := make([]float64, nlev+1)
	s.Hybrid.InterfacePressure(P0, pInt)

	for ei, e := range s.Mesh.Elements {
		for n := 0; n < npsq; n++ {
			lon, lat := e.Lon[n], e.Lat[n]
			// Zonal jet peaked at 45 degrees in each hemisphere.
			jet := u0 * math.Sin(2*lat) * math.Sin(2*lat)
			// Gaussian bump perturbation in u.
			cosd := math.Sin(latP)*math.Sin(lat) + math.Cos(latP)*math.Cos(lat)*math.Cos(lon-lonP)
			d := math.Acos(math.Max(-1, math.Min(1, cosd)))
			bump := pertU * math.Exp(-(d/radP)*(d/radP))

			for k := 0; k < nlev; k++ {
				pm := (pInt[k] + pInt[k+1]) / 2
				// Vertical jet structure: strongest near 250 hPa.
				vert := math.Sin(math.Pi * math.Min(1, pm/P0))
				height := -Rd * t0 / Gravit * math.Log(pm/P0) // isothermal estimate
				tk := t0 - lapse*height
				if tk < 200 {
					tk = 200
				}
				// Thermal-wind-consistent meridional T gradient (approximate):
				// dT/dlat ~ -(f a / Rd) * du/dlnp. A modest analytic tilt
				// keeps the jet quasi-balanced; residual imbalance is the
				// wave trigger, as in the JW test.
				tk -= 10 * math.Sin(2*lat) * math.Sin(2*lat) * vert
				st.U[ei][k*npsq+n] = jet*vert + bump*vert
				st.V[ei][k*npsq+n] = 0
				st.T[ei][k*npsq+n] = tk
				st.DP[ei][k*npsq+n] = dpRef[k]
			}
		}
	}
}

// AddMountain superimposes a Gaussian mountain of the given peak height
// (m) and half-width radius (radians of great circle) on the surface
// geopotential. The overlying atmosphere is NOT rebalanced, so the
// topographic pressure-gradient force spins up a local circulation —
// the standard mountain-wave forcing test for the Phis terms of
// compute_and_apply_rhs.
func (s *Solver) AddMountain(st *State, lonC, latC, height, radius float64) {
	npsq := s.Cfg.Np * s.Cfg.Np
	sLat, cLat := math.Sin(latC), math.Cos(latC)
	for ei, e := range s.Mesh.Elements {
		for n := 0; n < npsq; n++ {
			cosd := sLat*math.Sin(e.Lat[n]) + cLat*math.Cos(e.Lat[n])*math.Cos(e.Lon[n]-lonC)
			d := math.Acos(math.Max(-1, math.Min(1, cosd)))
			st.Phis[ei][n] += Gravit * height * math.Exp(-(d/radius)*(d/radius))
		}
	}
}
