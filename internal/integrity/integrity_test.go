package integrity

import (
	"errors"
	"math"
	"testing"

	"swcam/internal/dycore"
)

func testState(seed float64) *dycore.State {
	st := dycore.NewState(3, 2, 4, 2)
	v := seed
	for _, f := range st.Fields() {
		for e := range f.Data {
			for i := range f.Data[e] {
				v = v*1.000001 + 0.001
				f.Data[e][i] = v
			}
		}
	}
	return st
}

func TestSealVerifyRoundTrip(t *testing.T) {
	st := testState(1.0)
	s := SealState(st, 7)
	if s.Step != 7 {
		t.Fatalf("seal step = %d, want 7", s.Step)
	}
	if err := s.Verify(st); err != nil {
		t.Fatalf("pristine state failed verification: %v", err)
	}
	// Verification must not perturb the seal: repeatable.
	if err := s.Verify(st); err != nil {
		t.Fatalf("second verification failed: %v", err)
	}
}

// Every single-bit flip of every value of every field must be caught,
// including low mantissa bits that no physical plausibility check
// could ever see.
func TestSealDetectsEverySingleBitFlipLocation(t *testing.T) {
	st := testState(2.0)
	s := SealState(st, 1)
	for _, f := range st.Fields() {
		for e := range f.Data {
			// One value per element per field keeps the test fast while
			// still covering every (field, element) location.
			i := len(f.Data[e]) / 2
			orig := f.Data[e][i]
			f.Data[e][i] = math.Float64frombits(math.Float64bits(orig) ^ 1)
			err := s.Verify(st)
			if err == nil {
				t.Fatalf("flip in %s[%d][%d] undetected", f.Name, e, i)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("detection does not wrap ErrCorrupt: %v", err)
			}
			f.Data[e][i] = orig
		}
	}
	if err := s.Verify(st); err != nil {
		t.Fatalf("restored state failed verification: %v", err)
	}
}

func TestSealDetectsEveryMantissaBit(t *testing.T) {
	st := testState(3.0)
	s := SealState(st, 1)
	orig := st.T[1][5]
	for bit := uint(0); bit < 52; bit++ {
		st.T[1][5] = math.Float64frombits(math.Float64bits(orig) ^ (1 << bit))
		if err := s.Verify(st); err == nil {
			t.Fatalf("mantissa bit %d flip undetected", bit)
		}
		st.T[1][5] = orig
	}
}

func TestSealCloneIsIndependent(t *testing.T) {
	st := testState(4.0)
	s := SealState(st, 3)
	c := s.Clone()
	st.U[0][0] += 1
	s.Reseal(st, 4)
	if err := s.Verify(st); err != nil {
		t.Fatalf("resealed state failed verification: %v", err)
	}
	if err := c.Verify(st); err == nil {
		t.Fatal("clone tracked the reseal; it must be independent")
	}
	if c.Step != 3 {
		t.Fatalf("clone step = %d, want 3", c.Step)
	}
}

func TestSealDimensionMismatch(t *testing.T) {
	st := testState(5.0)
	s := NewRankSeal(2) // state has 3 elements
	if err := s.Verify(st); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("dimension mismatch not flagged as corruption: %v", err)
	}
}

func TestLedgerAcceptsSmallDriftRejectsLarge(t *testing.T) {
	l := NewLedger()
	base := Invariants{Mass: 1e9, Energy: 5e14, TracerMass: 2e7}
	if err := l.Check(1, base); err != nil {
		t.Fatalf("first record rejected: %v", err)
	}
	// Roundoff-scale mass drift, physics-scale energy drift: fine.
	ok := Invariants{Mass: base.Mass * (1 + 1e-12), Energy: base.Energy * 1.01, TracerMass: base.TracerMass * 0.99}
	if err := l.Check(2, ok); err != nil {
		t.Fatalf("legitimate drift rejected: %v", err)
	}
	// Exponent-scale mass jump: an SDC signature.
	bad := ok
	bad.Mass *= 2
	err := l.Check(3, bad)
	if err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("2x mass jump not flagged: %v", err)
	}
	// The suspect step must NOT have been recorded: after rollback the
	// replay of step 3 checks against clean step 2.
	if _, recorded := l.Recorded(3); recorded {
		t.Fatal("violating step was recorded; replay would compare against poison")
	}
	good := ok
	good.Mass *= 1 + 1e-13
	if err := l.Check(3, good); err != nil {
		t.Fatalf("replayed clean step rejected: %v", err)
	}
}

func TestLedgerFlagsNonFinite(t *testing.T) {
	l := NewLedger()
	if err := l.Check(1, Invariants{Mass: 1, Energy: 1, TracerMass: 1}); err != nil {
		t.Fatal(err)
	}
	for _, inv := range []Invariants{
		{Mass: math.NaN(), Energy: 1, TracerMass: 1},
		{Mass: 1, Energy: math.Inf(1), TracerMass: 1},
	} {
		if err := l.Check(2, inv); err == nil || !errors.Is(err, ErrCorrupt) {
			t.Fatalf("non-finite invariant not flagged: %v", err)
		}
	}
}

func TestLedgerReplayOverwritesIdentically(t *testing.T) {
	l := NewLedger()
	inv := Invariants{Mass: 3, Energy: 4, TracerMass: 5}
	for step := 1; step <= 4; step++ {
		if err := l.Check(step, inv); err != nil {
			t.Fatal(err)
		}
	}
	// Rollback to step 2, replay 3 and 4 with identical values.
	for step := 3; step <= 4; step++ {
		if err := l.Check(step, inv); err != nil {
			t.Fatalf("replay of step %d rejected: %v", step, err)
		}
	}
}

func TestLedgerPrunesHistory(t *testing.T) {
	l := NewLedger()
	inv := Invariants{Mass: 1, Energy: 1, TracerMass: 1}
	for step := 1; step <= ledgerKeep+10; step++ {
		if err := l.Check(step, inv); err != nil {
			t.Fatal(err)
		}
	}
	if len(l.hist) > ledgerKeep+1 {
		t.Fatalf("history grew to %d entries, want <= %d", len(l.hist), ledgerKeep+1)
	}
	if _, ok := l.Recorded(1); ok {
		t.Fatal("ancient step still on record")
	}
}
