package integrity

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"swcam/internal/dycore"
)

// crcTable is CRC-32C (Castagnoli), the same polynomial the snapshot
// codec and the serving store seal bytes with.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// crcFloats folds vals into crc as little-endian IEEE-754 bit patterns,
// chunked through a stack buffer so sealing allocates nothing.
func crcFloats(crc uint32, vals []float64) uint32 {
	var buf [512 * 8]byte
	for len(vals) > 0 {
		n := min(512, len(vals))
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(vals[i]))
		}
		crc = crc32.Update(crc, crcTable, buf[:n*8])
		vals = vals[n:]
	}
	return crc
}

// RankSeal is the at-rest scrub record for one rank's state: one
// CRC-32C per element, folded over every prognostic field of that
// element in canonical Fields() order. Per-element granularity keeps a
// verification failure attributable (which element rotted) and keeps
// resealing incremental-friendly.
//
// Step records the model step whose end-of-step state the seal covers.
// A verifier must skip seals whose Step does not match the state it is
// about to check — after a rollback, or under a scrub cadence coarser
// than every step, the seal is legitimately stale, not a detection.
type RankSeal struct {
	Step int
	crcs []uint32
}

// NewRankSeal returns an unsealed (Step -1) seal sized for nelem
// elements.
func NewRankSeal(nelem int) *RankSeal {
	return &RankSeal{Step: -1, crcs: make([]uint32, nelem)}
}

// SealState seals a fresh RankSeal over st as of step.
func SealState(st *dycore.State, step int) *RankSeal {
	s := NewRankSeal(st.NElem())
	s.Reseal(st, step)
	return s
}

// Reseal recomputes every element CRC over st and stamps the seal with
// step. The state must be at rest (no concurrent mutation).
func (s *RankSeal) Reseal(st *dycore.State, step int) {
	if len(s.crcs) != st.NElem() {
		panic(fmt.Sprintf("integrity: seal for %d elements resealed over %d", len(s.crcs), st.NElem()))
	}
	fields := st.Fields()
	for e := range s.crcs {
		crc := uint32(0)
		for _, f := range fields {
			crc = crcFloats(crc, f.Data[e])
		}
		s.crcs[e] = crc
	}
	s.Step = step
}

// Verify recomputes the element CRCs of st and compares them to the
// seal. The first mismatching element produces an error wrapping
// ErrCorrupt; nil means every element still matches the sealed bits.
func (s *RankSeal) Verify(st *dycore.State) error {
	if len(s.crcs) != st.NElem() {
		return fmt.Errorf("%w: seal covers %d elements, state has %d", ErrCorrupt, len(s.crcs), st.NElem())
	}
	fields := st.Fields()
	for e := range s.crcs {
		crc := uint32(0)
		for _, f := range fields {
			crc = crcFloats(crc, f.Data[e])
		}
		if crc != s.crcs[e] {
			return fmt.Errorf("%w: element %d crc %#08x, sealed %#08x at step %d",
				ErrCorrupt, e, crc, s.crcs[e], s.Step)
		}
	}
	return nil
}

// Clone returns an independent copy of the seal.
func (s *RankSeal) Clone() *RankSeal {
	c := &RankSeal{Step: s.Step, crcs: make([]uint32, len(s.crcs))}
	copy(c.crcs, s.crcs)
	return c
}
