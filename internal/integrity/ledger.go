package integrity

import (
	"fmt"
	"math"
)

// Invariants are the globally integrated quantities the ledger tracks
// step over step. They are computed on the canonical rank-0 reduction
// (per-element partials summed in ascending global-element order), so
// the same trajectory yields bit-identical invariants regardless of
// partitioning — a replayed step overwrites its history entry with the
// exact same values and the ledger converges under rollback/replay.
type Invariants struct {
	Mass       float64 // sum MP * dp over all nodes/levels
	Energy     float64 // sum MP * (Cp*T + (u^2+v^2)/2) * dp
	TracerMass float64 // sum MP * qdp over all tracers
}

// Default step-over-step relative drift tolerances. Mass is conserved
// near machine precision by construction (DSS + canonical mass fixer),
// so its tolerance is tight; energy and tracer mass drift legitimately
// through hyperviscosity, remap, limiting, and moist physics, so their
// guards are loose — they exist to catch exponent-scale in-compute
// flips, not roundoff. The scrubber is the precision instrument.
const (
	DefaultMassTol   = 1e-6
	DefaultEnergyTol = 0.1
	DefaultTracerTol = 0.1

	// ledgerKeep bounds the history: entries older than the newest
	// step by more than this are pruned. Far larger than any rollback
	// distance (checkpoints are a few steps apart).
	ledgerKeep = 128
)

// Ledger is the per-step conservation guard. Check compares step s
// against the recorded step s-1 and flags relative drift beyond the
// tolerances as corruption. History is keyed by step so rollback+replay
// naturally re-checks against the pre-fault record.
//
// The ledger is owned by rank 0 of the reduction: only one goroutine
// calls Check, so it is unsynchronized by design.
type Ledger struct {
	MassTol   float64
	EnergyTol float64
	TracerTol float64

	hist   map[int]Invariants
	newest int
	primed bool
}

// NewLedger returns a ledger with the default tolerances.
func NewLedger() *Ledger {
	return &Ledger{
		MassTol:   DefaultMassTol,
		EnergyTol: DefaultEnergyTol,
		TracerTol: DefaultTracerTol,
		hist:      map[int]Invariants{},
	}
}

// Check records inv as the invariants of step and, when step-1 is on
// record, flags drift beyond the tolerances. A violation returns an
// error wrapping ErrCorrupt and does NOT record the suspect values —
// the post-rollback replay must compare against the last clean record.
func (l *Ledger) Check(step int, inv Invariants) error {
	for _, c := range []struct {
		name string
		v    float64
	}{{"mass", inv.Mass}, {"energy", inv.Energy}, {"tracer mass", inv.TracerMass}} {
		if math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return fmt.Errorf("%w: global %s is %v at step %d", ErrCorrupt, c.name, c.v, step)
		}
	}
	if prev, ok := l.hist[step-1]; ok {
		for _, c := range []struct {
			name     string
			cur, old float64
			tol      float64
		}{
			{"mass", inv.Mass, prev.Mass, l.MassTol},
			{"energy", inv.Energy, prev.Energy, l.EnergyTol},
			{"tracer mass", inv.TracerMass, prev.TracerMass, l.TracerTol},
		} {
			scale := math.Max(math.Abs(c.old), 1e-30)
			if drift := math.Abs(c.cur-c.old) / scale; drift > c.tol {
				return fmt.Errorf("%w: global %s drifted %.3e (tolerance %.1e) from step %d to %d: %.17g -> %.17g",
					ErrCorrupt, c.name, drift, c.tol, step-1, step, c.old, c.cur)
			}
		}
	}
	l.hist[step] = inv
	if !l.primed || step > l.newest {
		l.newest, l.primed = step, true
	}
	for s := range l.hist {
		if s < l.newest-ledgerKeep {
			delete(l.hist, s)
		}
	}
	return nil
}

// Recorded reports whether the ledger holds invariants for step
// (diagnostics and tests).
func (l *Ledger) Recorded(step int) (Invariants, bool) {
	inv, ok := l.hist[step]
	return inv, ok
}
