// Package integrity defends the model against silent data corruption
// (SDC). At the paper's scale — 10M+ cores for days — undetected bit
// flips in resident memory are a when, not an if, and the existing
// defenses stop at the wire: mpirt CRCs every message and the dycore
// watchdog catches NaN/CFL blowups, but a flip in a rank's prognostic
// state *between* steps sails through both, gets captured into the next
// checkpoint, is replicated to the buddy rank, and poisons every rung
// of the recovery ladder.
//
// Three complementary detectors close that gap:
//
//   - RankSeal: at-rest scrubbing. A per-element CRC-32C over the
//     rank's prognostic arrays, sealed after the state is finalized at
//     end-of-step and verified before it is consumed at
//     start-of-next-step. Catches corruption of resident state while it
//     sat idle, before it contaminates compute or a checkpoint.
//   - Ledger: in-compute guards. Per-step global mass / total-energy /
//     tracer-mass conservation checks on the canonical rank-0
//     reduction. Catches the flips the scrubber's timing cannot — a
//     corrupted value that was *computed with* inside a step — at the
//     cost of only exponent-scale sensitivity.
//   - Generation verification (internal/core): every checkpoint
//     generation re-verifies against its seal before a restore uses
//     it; a poisoned generation escalates to the next-older one.
//
// All detections surface as errors wrapping ErrCorrupt so supervisors
// can route them to verified-restore recovery rather than treating
// them as process death.
package integrity

import "errors"

// ErrCorrupt is the sentinel wrapped by every integrity detection:
// scrub mismatches, invariant-ledger violations, and poisoned
// checkpoint generations.
var ErrCorrupt = errors.New("integrity: silent data corruption detected")
