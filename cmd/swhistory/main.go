// Command swhistory inspects a history file produced by camsw -history:
// per-frame field statistics and an ASCII contour map of a chosen field
// — the ncdump/quicklook role for this repository's output format.
//
//	swhistory -file h0.bin
//	swhistory -file h0.bin -map T -frame 2
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"swcam/internal/core"
)

func main() {
	file := flag.String("file", "", "history file to read")
	mapField := flag.String("map", "", "render an ASCII map of this field")
	frame := flag.Int("frame", -1, "frame for -map (default: last)")
	flag.Parse()
	if *file == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swhistory:", err)
		os.Exit(1)
	}
	defer f.Close()
	nlon, nlat, frames, err := core.ReadHistory(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swhistory:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %dx%d grid, %d frames\n", *file, nlon, nlat, len(frames))

	var names []string
	if len(frames) > 0 {
		for name := range frames[0].Data {
			names = append(names, name)
		}
		sort.Strings(names)
	}
	for i, fr := range frames {
		fmt.Printf("frame %d (t=%.2f h):\n", i, fr.Hours)
		for _, name := range names {
			lo, hi, mean := stats(fr.Data[name])
			fmt.Printf("  %-8s min %10.3f  max %10.3f  mean %10.3f\n", name, lo, hi, mean)
		}
	}

	if *mapField != "" && len(frames) > 0 {
		fi := *frame
		if fi < 0 || fi >= len(frames) {
			fi = len(frames) - 1
		}
		vals, ok := frames[fi].Data[*mapField]
		if !ok {
			fmt.Fprintf(os.Stderr, "swhistory: no field %q\n", *mapField)
			os.Exit(1)
		}
		fmt.Printf("\n%s, frame %d (north at top):\n", *mapField, fi)
		renderASCII(vals, nlon, nlat)
	}
}

func stats(v []float64) (lo, hi, mean float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	sum := 0.0
	for _, x := range v {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
		sum += x
	}
	return lo, hi, sum / float64(len(v))
}

// renderASCII prints the field as shade characters, downsampled to at
// most 72 columns.
func renderASCII(v []float64, nlon, nlat int) {
	shades := []byte(" .:-=+*#%@")
	lo, hi, _ := stats(v)
	span := hi - lo
	if span == 0 {
		span = 1
	}
	stepX := (nlon + 71) / 72
	for j := nlat - 1; j >= 0; j -= 1 {
		line := make([]byte, 0, nlon/stepX+1)
		for i := 0; i < nlon; i += stepX {
			x := (v[j*nlon+i] - lo) / span
			idx := int(x * float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			line = append(line, shades[idx])
		}
		fmt.Println(string(line))
	}
	fmt.Printf("scale: '%c' = %.3f ... '%c' = %.3f\n", shades[0], lo, shades[len(shades)-1], hi)
}
