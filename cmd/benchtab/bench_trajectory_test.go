package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Era-spanning fixtures: a v1 file with only backends (the oldest shape
// still valid today), one with every optional block, one serving-only,
// and one declaring a foreign schema version.
const benchOld = `{
  "schema": "swcam-bench/v1",
  "config": {"ne": 8, "nlev": 16, "qsize": 4, "steps": 10, "ranks": 4},
  "backends": {
    "athread": {"sypd": 12.5, "wall_seconds": 3.1,
                "kernels": {"euler": {"calls": 10, "ns": 1000, "flops": 5, "bytes": 7}}}
  }
}`

const benchFull = `{
  "schema": "swcam-bench/v1",
  "config": {"ne": 8, "nlev": 16, "qsize": 4, "steps": 10, "ranks": 4},
  "backends": {
    "athread": {"sypd": 14.0, "wall_seconds": 2.8, "overlap_ratio": 0.62,
                "kernels": {"euler": {"calls": 10, "ns": 900, "flops": 5, "bytes": 7}}}
  },
  "recovery": {"retransmits": 3, "retransmitted": 2, "checkpoints": 5,
               "localized": 1, "respawns": 0, "shrinks": 0, "rollbacks": 1,
               "recovery_wall_ns": 123456}
}`

const benchServing = `{
  "schema": "swcam-bench/v1",
  "config": {"ne": 4, "nlev": 8, "qsize": 1, "steps": 2, "ranks": 2},
  "serving": {"members": 3, "duration_secs": 20.0, "requests": 4000, "qps": 200.0,
              "p50_ms": 1.2, "p90_ms": 3.4, "p99_ms": 9.9,
              "errors_5xx": 0, "shed_429": 12, "stale_serves": 37,
              "restarts": 2, "quarantines": 0, "torn_snapshots": 1}
}`

const benchScaling = `{
  "schema": "swcam-bench/v1",
  "config": {"ne": 4, "nlev": 4, "qsize": 1, "steps": 2, "ranks": 4},
  "scaling": {
    "mode": "calibrated", "backend": "intel", "budget_bytes_per_rank": 536870912,
    "strong": [{"ne": 4, "ranks": 4, "elems_per_rank": 24, "steps": 2,
                "wall_ns": 15000000, "per_step_ns": 7500000, "dyn_ns": 8000000,
                "halo_ns": 40000000, "coll_ns": 9000000, "wire_bytes": 400000,
                "msgs": 3000, "rank_bytes": 200000, "sypd": 270.0,
                "flops": 90000000, "mem_bytes": 260000000}],
    "fit": {"ns_per_flop": 0.7, "ns_per_byte": 0, "ns_per_msg": 0,
            "ns_per_wire_byte": 14.0, "fixed_ns": 0, "points": 8,
            "residual_rms": 0.1},
    "projection": [{"ne": 256, "res_km": 11.7, "ranks": 163840, "sypd": 87.3,
                    "model_sypd": 146.8}]
  }
}`

const benchPhys = `{
  "schema": "swcam-bench/v1",
  "config": {"ne": 3, "nlev": 8, "qsize": 3, "steps": 6, "ranks": 2,
             "physics": "moist", "phys_workers": 4},
  "backends": {
    "intel": {"sypd": 300.0, "wall_seconds": 0.05,
              "kernels": {"euler": {"calls": 10, "ns": 1000, "flops": 5, "bytes": 7}}}
  },
  "phys": {"workers": 4, "columns": 10368, "chunks": 648, "steals": 216,
           "steal_attempts": 1008, "worker_chunks": [200, 160, 150, 138],
           "worker_busy_ns": [4000000, 3600000, 3400000, 3000000],
           "serial_sypd": 275.0, "parallel_sypd": 330.0}
}`

const benchIntegrity = `{
  "schema": "swcam-bench/v1",
  "config": {"ne": 2, "nlev": 4, "qsize": 1, "steps": 6, "ranks": 3},
  "backends": {
    "intel": {"sypd": 280.0, "wall_seconds": 0.04,
              "kernels": {"euler": {"calls": 10, "ns": 1000, "flops": 5, "bytes": 7}}}
  },
  "integrity": {"scrub_every": 1, "generations": 3, "seals": 72, "verifies": 60,
                "flips_injected": 6, "scrub_detections": 3, "ledger_detections": 1,
                "poisoned_copies": 1, "escalations": 2, "preship_rejects": 1,
                "scrub_ns": 400000, "step_ns": 10000000, "overhead_pct": 4.0}
}`

const benchForeignSchema = `{
  "schema": "swcam-bench/v999",
  "config": {"ne": 8, "nlev": 16, "qsize": 4, "steps": 10, "ranks": 4},
  "backends": {}
}`

func writeBench(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchTableOptionalBlocks(t *testing.T) {
	dir := t.TempDir()
	tests := []struct {
		name    string
		files   map[string]string
		want    []string // substrings of the rendered table
		wantErr string   // substring of the load error ("" = success)
	}{
		{
			name:  "old file without recovery or overlap prints n/a",
			files: map[string]string{"BENCH_1.json": benchOld},
			want:  []string{"BENCH_1.json", "athread 12.5", "n/a"},
		},
		{
			name:  "full file prints every block",
			files: map[string]string{"BENCH_1.json": benchFull},
			want:  []string{"62%", "5ck", "3retx", "1roll"},
		},
		{
			name:  "serving-only file renders qps and p99",
			files: map[string]string{"BENCH_1.json": benchServing},
			want:  []string{"200 req/s", "p99 9.9ms", "(3m)"},
		},
		{
			name:  "scaling-only file renders mode and projection",
			files: map[string]string{"BENCH_1.json": benchScaling},
			want:  []string{"calibrated 1pt", "ne256 87.3 SYPD"},
		},
		{
			name:  "physics file renders pool + utilization + pair speedup",
			files: map[string]string{"BENCH_1.json": benchPhys},
			want:  []string{"4w 216st", "75%util", "1.20x"},
		},
		{
			name:  "integrity file renders overhead + detections + escalations",
			files: map[string]string{"BENCH_1.json": benchIntegrity},
			want:  []string{"4.0%ovh", "6/6det", "2esc"},
		},
		{
			name: "mixed eras of one schema coexist",
			files: map[string]string{
				"BENCH_1.json": benchOld,
				"BENCH_2.json": benchFull,
				"BENCH_3.json": benchServing,
				"BENCH_4.json": benchScaling,
				"BENCH_5.json": benchPhys,
			},
			want: []string{"BENCH_1.json", "BENCH_2.json", "BENCH_3.json", "BENCH_4.json", "BENCH_5.json"},
		},
		{
			name: "mixed schema versions are rejected with both versions named",
			files: map[string]string{
				"BENCH_1.json": benchOld,
				"BENCH_2.json": benchForeignSchema,
			},
			wantErr: "mixed schema versions",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sub := t.TempDir()
			for name, content := range tt.files {
				writeBench(t, sub, name, content)
			}
			paths, err := resolveBenchPaths(sub)
			if err != nil {
				t.Fatal(err)
			}
			entries, err := loadBenchSet(paths)
			if tt.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
					t.Fatalf("want error containing %q, got %v", tt.wantErr, err)
				}
				if !strings.Contains(err.Error(), "swcam-bench/v999") {
					t.Errorf("error should name the offending schema: %v", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			writeBenchTable(&sb, entries)
			out := sb.String()
			for _, w := range tt.want {
				if !strings.Contains(out, w) {
					t.Errorf("table missing %q:\n%s", w, out)
				}
			}
		})
	}
	_ = dir
}

func TestResolveBenchPathsOrdersNumerically(t *testing.T) {
	dir := t.TempDir()
	// BENCH_10 must sort after BENCH_2, not lexically before it.
	writeBench(t, dir, "BENCH_10.json", benchOld)
	writeBench(t, dir, "BENCH_2.json", benchOld)
	writeBench(t, dir, "notes.txt", "ignored")
	paths, err := resolveBenchPaths(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 ||
		filepath.Base(paths[0]) != "BENCH_2.json" ||
		filepath.Base(paths[1]) != "BENCH_10.json" {
		t.Fatalf("bad order: %v", paths)
	}
}

func TestResolveBenchPathsMissing(t *testing.T) {
	if _, err := resolveBenchPaths(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("want error for missing file")
	}
}
