package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"swcam/internal/obs"
)

// The -bench mode prints the repository's performance trajectory: one
// row per BENCH_<n>.json. Files from different eras omit blocks that
// did not exist yet (overlap_ratio, recovery, serving) — those print
// as n/a, never as an error. Files from a *different schema version*
// are a different matter: mixing them in one table would compare
// numbers with different meanings, so the set is rejected up front.

type benchEntry struct {
	Path string
	File *obs.BenchFile
}

var benchFileRE = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// resolveBenchPaths expands the -bench argument: a comma-separated list
// of files, any element of which may be a directory (expanded to its
// BENCH_<n>.json files in numeric order).
func resolveBenchPaths(arg string) ([]string, error) {
	var paths []string
	for _, part := range strings.Split(arg, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		info, err := os.Stat(part)
		if err != nil {
			return nil, fmt.Errorf("benchtab: %w", err)
		}
		if !info.IsDir() {
			paths = append(paths, part)
			continue
		}
		entries, err := os.ReadDir(part)
		if err != nil {
			return nil, fmt.Errorf("benchtab: %w", err)
		}
		var found []string
		for _, e := range entries {
			if benchFileRE.MatchString(e.Name()) {
				found = append(found, filepath.Join(part, e.Name()))
			}
		}
		sort.Slice(found, func(i, j int) bool {
			ni, _ := benchFileNum(found[i])
			nj, _ := benchFileNum(found[j])
			return ni < nj
		})
		paths = append(paths, found...)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("benchtab: no BENCH files found in %q", arg)
	}
	return paths, nil
}

func benchFileNum(path string) (int, bool) {
	m := benchFileRE.FindStringSubmatch(filepath.Base(path))
	if m == nil {
		return 0, false
	}
	var n int
	fmt.Sscanf(m[1], "%d", &n)
	return n, true
}

// loadBenchSet reads the files, rejecting a mix of schema versions
// before any per-file validation: every file must declare the same
// schema string, or the table would silently compare incomparable
// numbers.
func loadBenchSet(paths []string) ([]benchEntry, error) {
	type rawSchema struct {
		Schema string `json:"schema"`
	}
	schemas := map[string][]string{} // schema -> files declaring it
	raw := make([][]byte, len(paths))
	for i, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("benchtab: %w", err)
		}
		raw[i] = data
		var rs rawSchema
		if err := json.Unmarshal(data, &rs); err != nil {
			return nil, fmt.Errorf("benchtab: %s: %w", p, err)
		}
		schemas[rs.Schema] = append(schemas[rs.Schema], filepath.Base(p))
	}
	if len(schemas) > 1 {
		var parts []string
		for s, files := range schemas {
			if s == "" {
				s = "(missing)"
			}
			parts = append(parts, fmt.Sprintf("%s: %s", s, strings.Join(files, ", ")))
		}
		sort.Strings(parts)
		return nil, fmt.Errorf("benchtab: mixed schema versions in one table — %s; compare files of one schema at a time",
			strings.Join(parts, "; "))
	}
	entries := make([]benchEntry, len(paths))
	for i, p := range paths {
		f, err := obs.DecodeBench(raw[i])
		if err != nil {
			return nil, fmt.Errorf("benchtab: %s: %w", p, err)
		}
		entries[i] = benchEntry{Path: p, File: f}
	}
	return entries, nil
}

// writeBenchTable prints the trajectory table. Absent optional blocks
// print n/a.
func writeBenchTable(w io.Writer, entries []benchEntry) {
	fmt.Fprintln(w, "== Performance trajectory (BENCH files) ==")
	fmt.Fprintf(w, "  %-14s %-18s %-26s %-10s %-22s %-24s %-26s %-28s %s\n",
		"file", "config", "backends (SYPD)", "overlap", "recovery", "physics", "integrity", "serving", "scaling")
	for _, e := range entries {
		f := e.File
		cfg := fmt.Sprintf("ne%d L%d r%d", f.Config.Ne, f.Config.Nlev, f.Config.Ranks)

		backends, overlap := "n/a", "n/a"
		if len(f.Backends) > 0 {
			names := make([]string, 0, len(f.Backends))
			for n := range f.Backends {
				names = append(names, n)
			}
			sort.Strings(names)
			var bs []string
			bestOverlap := 0.0
			for _, n := range names {
				b := f.Backends[n]
				bs = append(bs, fmt.Sprintf("%s %.1f", n, b.SYPD))
				if b.OverlapRatio > bestOverlap {
					bestOverlap = b.OverlapRatio
				}
			}
			backends = strings.Join(bs, " ")
			if bestOverlap > 0 {
				overlap = fmt.Sprintf("%.0f%%", 100*bestOverlap)
			}
		}

		recovery := "n/a"
		if r := f.Recovery; r != nil {
			recovery = fmt.Sprintf("%dck %dretx %droll", r.Checkpoints, r.Retransmits, r.Rollbacks)
		}

		// Physics column: pool size, steal rate, and — when the file
		// carries the paired measurement — the serial-to-parallel physics
		// speedup. Worker utilization balance comes from the per-worker
		// busy ledger: min busy time over max, 100% = perfectly even.
		phys := "n/a"
		if p := f.Phys; p != nil {
			phys = fmt.Sprintf("%dw %dst", p.Workers, p.Steals)
			if n := len(p.WorkerBusyNs); n > 0 {
				minB, maxB := p.WorkerBusyNs[0], p.WorkerBusyNs[0]
				for _, b := range p.WorkerBusyNs[1:] {
					if b < minB {
						minB = b
					}
					if b > maxB {
						maxB = b
					}
				}
				if maxB > 0 {
					phys += fmt.Sprintf(" %.0f%%util", 100*float64(minB)/float64(maxB))
				}
			}
			if p.SerialSYPD > 0 && p.ParallelSYPD > 0 {
				phys += fmt.Sprintf(" %.2fx", p.ParallelSYPD/p.SerialSYPD)
			}
		}

		// Integrity column: scrub overhead as a fraction of step time,
		// detections over injected flips, and how often a restore had to
		// escalate past a poisoned checkpoint generation.
		integ := "n/a"
		if in := f.Integrity; in != nil {
			detected := in.ScrubDetections + in.LedgerDetections + in.PoisonedCopies + in.PreShipRejects
			integ = fmt.Sprintf("%.1f%%ovh %d/%ddet %desc", in.OverheadPct, detected, in.FlipsInjected, in.Escalations)
		}

		serving := "n/a"
		if s := f.Serving; s != nil {
			serving = fmt.Sprintf("%.0f req/s p99 %.1fms (%dm)", s.QPS, s.P99Ms, s.Members)
		}

		scaling := "n/a"
		if sc := f.Scaling; sc != nil {
			scaling = fmt.Sprintf("%s %dpt", sc.Mode, len(sc.Strong)+len(sc.Weak))
			if n := len(sc.Projection); n > 0 {
				last := sc.Projection[n-1]
				scaling += fmt.Sprintf(" ne%d %.3g SYPD", last.Ne, last.SYPD)
			}
		}

		fmt.Fprintf(w, "  %-14s %-18s %-26s %-10s %-22s %-24s %-26s %-28s %s\n",
			filepath.Base(e.Path), cfg, backends, overlap, recovery, phys, integ, serving, scaling)
	}
	fmt.Fprintln(w)
}

// benchTrajectory is the -bench entry point.
func benchTrajectory(arg string) error {
	paths, err := resolveBenchPaths(arg)
	if err != nil {
		return err
	}
	entries, err := loadBenchSet(paths)
	if err != nil {
		return err
	}
	writeBenchTable(os.Stdout, entries)
	return nil
}
