// Command benchtab regenerates every table and figure of the paper's
// evaluation section from the models and simulators in this repository:
//
//	benchtab -table 1     kernel timings, Intel/MPE/OpenACC/Athread
//	benchtab -table 2     mesh configurations
//	benchtab -table 3     NGGPS comparison vs FV3 and MPAS
//	benchtab -fig 4       climatology backend equivalence
//	benchtab -fig 5       kernel speedups
//	benchtab -fig 6       whole-CAM SYPD (ne30 and ne120)
//	benchtab -fig 7       HOMME strong scaling (ne256, ne1024)
//	benchtab -fig 8       HOMME weak scaling (48/192/650/768 elems/proc)
//	benchtab -fig 9       hurricane resolution sensitivity + track verification
//	benchtab -all         everything
//
// It also checks kernel-cost parity between two BENCH files:
//
//	benchtab -parity NEW.json -against bench/BENCH_8.json [-allow-flops k1,k2]
//
// Paper values are printed alongside for comparison; EXPERIMENTS.md
// records the full correspondence.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"swcam/internal/core"
	"swcam/internal/dycore"
	"swcam/internal/exec"
	"swcam/internal/perf"
	"swcam/internal/tc"
)

func main() {
	attrs := flag.Bool("attrs", false, "print the performance-attributes summary (paper section 2)")
	table := flag.Int("table", 0, "print table N (1, 2 or 3)")
	fig := flag.Int("fig", 0, "print figure N (4-9; 10 = extra overlap ablation)")
	all := flag.Bool("all", false, "print everything")
	jsonOut := flag.Bool("json", false, "emit the selected sections as JSON (shared obs encoder) instead of text")
	bench := flag.String("bench", "", "print the performance trajectory from BENCH_<n>.json files (comma-separated paths and/or directories)")
	parity := flag.String("parity", "", "BENCH file whose per-backend kernel Cost columns (calls/flops/bytes) must match -against; exits nonzero on any drift")
	against := flag.String("against", "", "reference BENCH file for -parity")
	allowFlops := flag.String("allow-flops", "", "comma-separated base kernel names whose flop column may differ under -parity (intended accounting fixes)")
	flag.Parse()

	if *jsonOut {
		jsonMain(*all, *attrs, *table, *fig)
		return
	}

	ran := false
	if *parity != "" {
		if *against == "" {
			fmt.Fprintln(os.Stderr, "benchtab: -parity requires -against")
			os.Exit(2)
		}
		if err := benchParity(*parity, *against, *allowFlops); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ran = true
	}
	if *bench != "" {
		if err := benchTrajectory(*bench); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ran = true
	}
	if *all || *attrs {
		attributes()
		ran = true
	}
	if *all || *table == 1 {
		table1()
		ran = true
	}
	if *all || *table == 2 {
		table2()
		ran = true
	}
	if *all || *table == 3 {
		table3()
		ran = true
	}
	if *all || *fig == 4 {
		fig4()
		ran = true
	}
	if *all || *fig == 5 {
		fig5()
		ran = true
	}
	if *all || *fig == 6 {
		fig6()
		ran = true
	}
	if *all || *fig == 7 {
		fig7()
		ran = true
	}
	if *all || *fig == 8 {
		fig8()
		ran = true
	}
	if *all || *fig == 9 {
		fig9()
		ran = true
	}
	if *all || *fig == 10 {
		fig10()
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func attributes() {
	fmt.Println("== Performance attributes (paper section 2, reproduced values) ==")
	full := perf.WeakScaling(650, 155000, 128, 4)
	c30 := perf.DefaultCAMConfig(30)
	c120 := perf.DefaultCAMConfig(120)
	rows := [][2]string{
		{"Sustainable performance", fmt.Sprintf("%.2f PFlops using 10,075,000 cores (paper: 3.3)", full.PFlops)},
		{"SYPD", fmt.Sprintf("%.1f SYPD ne120 / %.1f SYPD ne30 (paper: 3.4 / 21.5)",
			c120.SYPD(perf.VersionOpenACC, 28800), c30.SYPD(perf.VersionAthread, 5400))},
		{"Refactoring effort", "paper: 754,129 LOC total, 152,336 modified, 57,709 added"},
		{"Category", "time-to-solution, scalability, peak performance"},
		{"Extreme event", "hurricane Katrina lifecycle (see cmd/katrina)"},
		{"Method", "explicit"},
		{"Reported on", "whole application with I/O (checkpointing included)"},
		{"Precision", "double"},
		{"System scale", "full-machine model: 40,960 nodes x 4 CGs x 65 cores"},
		{"Measurement", "simulator counters + calibrated machine model"},
	}
	for _, r := range rows {
		fmt.Printf("  %-26s %s\n", r[0], r[1])
	}
	fmt.Println()
}

func table1() {
	fmt.Println("== Table 1: key dynamics kernels, modeled per-process time (ms) ==")
	fmt.Println("   (paper reports seconds for a longer run at 6,144 processes;")
	fmt.Println("    ratios are the comparable quantity)")
	rows := perf.Table1(perf.DefaultTable1Config())
	fmt.Printf("%-24s %9s %9s %9s %9s\n", "kernel", "Intel", "MPE", "OpenACC", "Athread")
	for _, r := range rows {
		fmt.Printf("%-24s %9.3f %9.3f %9.3f %9.3f\n", r.Name,
			1e3*r.Times[exec.Intel], 1e3*r.Times[exec.MPE],
			1e3*r.Times[exec.OpenACC], 1e3*r.Times[exec.Athread])
	}
	fmt.Println()
}

func table2() {
	fmt.Println("== Table 2: mesh configurations ==")
	fmt.Printf("%-8s %-14s %-9s %-12s\n", "size", "horizontal", "vertical", "# elements")
	for _, ne := range []int{64, 256, 512, 1024, 2048, 4096} {
		fmt.Printf("ne%-6d %4dx%d x6      %-9d %-12d\n", ne, ne, ne, 128, 6*ne*ne)
	}
	fmt.Println()
}

func table3() {
	fmt.Println("== Table 3: NGGPS dycore comparison (modeled run time) ==")
	paper := [][]float64{{2.712, 3.56, 7.56}, {14.379, 30.31, 64.80}}
	for i, c := range perf.Table3() {
		fmt.Println(c.Label)
		for k, r := range c.Rows {
			fmt.Printf("  %-10s np=%6d  model %8.3f s   paper %8.3f s\n",
				r.Name, r.NProcs, r.RunTime, paper[i][k])
		}
	}
	fmt.Println()
}

func fig4() {
	fmt.Println("== Figure 4: climatology equivalence, control (Intel serial) vs")
	fmt.Println("   test (Athread distributed), Held-Suarez-like run at ne4 ==")
	cfg := dycore.DefaultConfig(4)
	cfg.Nlev = 8
	cfg.Qsize = 0
	s, err := dycore.NewSolver(cfg)
	check(err)
	ref := s.NewState()
	s.InitBaroclinicWave(ref)
	g := ref.Clone()
	const steps = 10
	for i := 0; i < steps; i++ {
		s.Step(ref)
	}
	job, err := core.NewParallelJob(cfg, exec.Athread, true, 4)
	check(err)
	local := job.Scatter(g)
	job.Run(local, steps)
	got := job.Gather(local)
	zmA := s.ZonalMeanT(ref, cfg.Nlev-1, 12)
	zmB := s.ZonalMeanT(got, cfg.Nlev-1, 12)
	fmt.Printf("%-10s %12s %12s %12s\n", "lat band", "control (K)", "test (K)", "diff (K)")
	maxd := 0.0
	for b := range zmA {
		d := math.Abs(zmA[b] - zmB[b])
		if d > maxd {
			maxd = d
		}
		lat := -90 + (float64(b)+0.5)*15
		fmt.Printf("%+7.1f    %12.4f %12.4f %12.2e\n", lat, zmA[b], zmB[b], d)
	}
	fmt.Printf("max zonal-mean difference: %.2e K (paper: 'almost identical patterns')\n\n", maxd)
}

func fig5() {
	fmt.Println("== Figure 5: kernel speedups at the Table 1 workload ==")
	rows := perf.Table1(perf.DefaultTable1Config())
	fmt.Printf("%-24s %12s %12s %12s\n", "kernel", "MPE/Intel", "ACC vs Intel", "ATH vs Intel")
	for _, r := range rows {
		fmt.Printf("%-24s %11.2fx %11.2fx %11.2fx\n", r.Name,
			r.Times[exec.MPE]/r.Times[exec.Intel],
			r.Speedup(exec.Intel, exec.OpenACC),
			r.Speedup(exec.Intel, exec.Athread))
	}
	fmt.Println("paper bands: MPE 2-10x slower; ACC -6x..+1.6x; ATH 7-46x; ATH/ACC up to ~50x")
	fmt.Println()
}

func fig6() {
	fmt.Println("== Figure 6: whole-CAM SYPD ==")
	c := perf.DefaultCAMConfig(30)
	fmt.Println("ne30 (100 km):")
	fmt.Printf("%8s %8s %8s %8s\n", "procs", "ori", "openacc", "athread")
	for _, np := range []int{216, 600, 900, 1350, 5400} {
		fmt.Printf("%8d %8.2f %8.2f %8.2f\n", np,
			c.SYPD(perf.VersionOri, np), c.SYPD(perf.VersionOpenACC, np),
			c.SYPD(perf.VersionAthread, np))
	}
	fmt.Println("paper anchor: 21.5 SYPD athread @5400")
	c120 := perf.DefaultCAMConfig(120)
	fmt.Println("ne120 (25 km):")
	fmt.Printf("%8s %8s %8s\n", "procs", "openacc", "athread")
	for _, np := range []int{2400, 9600, 14400, 21600, 24000, 28800} {
		fmt.Printf("%8d %8.2f %8.2f\n", np,
			c120.SYPD(perf.VersionOpenACC, np), c120.SYPD(perf.VersionAthread, np))
	}
	fmt.Println("paper anchor: 3.4 SYPD openacc @28800")
	fmt.Println()
}

func fig7() {
	fmt.Println("== Figure 7: HOMME strong scaling (nlev=128) ==")
	for _, tc7 := range []struct {
		ne    int
		procs []int
		base  int
	}{
		{256, []int{4096, 8192, 16384, 32768, 65536, 131072}, 4096},
		{1024, []int{8192, 16384, 32768, 65536, 131072}, 8192},
	} {
		h := perf.DefaultHOMMEConfig(tc7.ne)
		fmt.Printf("ne%d:\n%8s %10s %8s\n", tc7.ne, "procs", "PFlops", "eff")
		for _, np := range tc7.procs {
			fmt.Printf("%8d %10.3f %8.3f\n", np, h.PFlops(np, true),
				h.Efficiency(np, tc7.base, true))
		}
	}
	fmt.Println("paper anchors: ne256 0.07->0.64 PFlops (21.7% eff);")
	fmt.Println("               ne1024 0.18->1.76 PFlops (51.2% eff)")
	fmt.Println()
}

func fig8() {
	fmt.Println("== Figure 8: HOMME weak scaling (nlev=128) ==")
	fmt.Printf("%6s %8s %10s %8s\n", "e/proc", "procs", "PFlops", "eff")
	for _, e := range []int{48, 192, 650, 768} {
		for _, np := range []int{512, 2048, 8192, 32768, 131072} {
			w := perf.WeakScaling(e, np, 128, 4)
			fmt.Printf("%6d %8d %10.3f %8.3f\n", e, np, w.PFlops,
				perf.WeakEfficiency(e, np, 512, 128, 4))
		}
	}
	full := perf.WeakScaling(650, 155000, 128, 4)
	fmt.Printf("full machine: 650 elems x 155,000 procs (10,075,000 cores): %.2f PFlops\n", full.PFlops)
	fmt.Println("paper anchors: 88.3%/92.3%/92.2% eff at 131,072; 3.3 PFlops at 155,000")
	fmt.Println()
}

func fig9() {
	fmt.Println("== Figure 9: hurricane resolution sensitivity + track machinery ==")
	vp := tc.KatrinaLikeVortex()
	for _, ne := range []int{4, 12} {
		run, err := tc.RunResolution(ne, 8, 24, 12, vp)
		check(err)
		fmt.Printf("ne%-3d (%4.0f km grid): init %5.1f kt -> final %5.1f kt (retention %.2f)\n",
			ne, run.GridKM, run.InitialKt, run.FinalKt, run.FinalKt/run.InitialKt)
	}
	fmt.Println("paper claim (9a/9b): 25 km resolves the storm, 100 km cannot")
	kt, h := tc.KatrinaPeak()
	fmt.Printf("observed Katrina peak: %.0f kt at hour %.0f (Aug 28 18Z), min 902 hPa\n", kt, h)
	fmt.Println("(run cmd/katrina for the full lifecycle track/intensity comparison)")
	fmt.Println()
}

func fig10() {
	fmt.Println("== Extra: the §7.6 bndry_exchangev redesign at scale ==")
	fmt.Println("   (paper: comm ~23% of prim_run at millions of cores; the overlap")
	fmt.Println("    removes up to 23% of HOMME runtime; direct unpack removes the")
	fmt.Println("    staging copies entirely)")
	h := perf.DefaultHOMMEConfig(1024)
	fmt.Printf("%8s %14s %14s %10s\n", "procs", "no overlap (s)", "overlap (s)", "saving")
	for np := 4096; np <= 131072; np *= 2 {
		tNo, _ := h.StepTime(np, false)
		tOv, _ := h.StepTime(np, true)
		fmt.Printf("%8d %14.6f %14.6f %9.1f%%\n", np, tNo, tOv, 100*(tNo-tOv)/tNo)
	}
	fmt.Println()
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}
