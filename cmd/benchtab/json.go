package main

import (
	"math"
	"os"

	"swcam/internal/core"
	"swcam/internal/dycore"
	"swcam/internal/exec"
	"swcam/internal/obs"
	"swcam/internal/perf"
	"swcam/internal/tc"
)

// jsonMain emits the selected tables/figures as one JSON document on
// stdout, through the shared obs encoder (the same one BENCH_<n>.json
// and the registry dumps use). Section keys mirror the flag names.
func jsonMain(all, attrs bool, table, fig int) {
	out := map[string]any{}
	if all || attrs {
		out["attrs"] = attrsJSON()
	}
	if all || table == 1 {
		out["table1"] = table1JSON()
	}
	if all || table == 2 {
		out["table2"] = table2JSON()
	}
	if all || table == 3 {
		out["table3"] = table3JSON()
	}
	if all || fig == 4 {
		out["fig4"] = fig4JSON()
	}
	if all || fig == 5 {
		out["fig5"] = fig5JSON()
	}
	if all || fig == 6 {
		out["fig6"] = fig6JSON()
	}
	if all || fig == 7 {
		out["fig7"] = fig7JSON()
	}
	if all || fig == 8 {
		out["fig8"] = fig8JSON()
	}
	if all || fig == 9 {
		out["fig9"] = fig9JSON()
	}
	if all || fig == 10 {
		out["fig10"] = fig10JSON()
	}
	if len(out) == 0 {
		os.Exit(2)
	}
	if err := obs.EncodeJSON(os.Stdout, out); err != nil {
		check(err)
	}
}

func attrsJSON() map[string]any {
	full := perf.WeakScaling(650, 155000, 128, 4)
	c30 := perf.DefaultCAMConfig(30)
	c120 := perf.DefaultCAMConfig(120)
	return map[string]any{
		"pflops_full_machine": full.PFlops,
		"sypd_ne120":          c120.SYPD(perf.VersionOpenACC, 28800),
		"sypd_ne30":           c30.SYPD(perf.VersionAthread, 5400),
	}
}

type kernelTimesJSON struct {
	Kernel string             `json:"kernel"`
	Times  map[string]float64 `json:"times_s"` // backend -> modeled seconds
}

func table1JSON() []kernelTimesJSON {
	rows := perf.Table1(perf.DefaultTable1Config())
	out := make([]kernelTimesJSON, 0, len(rows))
	for _, r := range rows {
		out = append(out, kernelTimesJSON{Kernel: r.Name, Times: map[string]float64{
			"intel":   r.Times[exec.Intel],
			"mpe":     r.Times[exec.MPE],
			"openacc": r.Times[exec.OpenACC],
			"athread": r.Times[exec.Athread],
		}})
	}
	return out
}

func table2JSON() []map[string]int {
	var out []map[string]int
	for _, ne := range []int{64, 256, 512, 1024, 2048, 4096} {
		out = append(out, map[string]int{"ne": ne, "nlev": 128, "elements": 6 * ne * ne})
	}
	return out
}

func table3JSON() []map[string]any {
	var out []map[string]any
	for _, c := range perf.Table3() {
		rows := make([]map[string]any, 0, len(c.Rows))
		for _, r := range c.Rows {
			rows = append(rows, map[string]any{
				"dycore": r.Name, "nprocs": r.NProcs, "run_time_s": r.RunTime,
			})
		}
		out = append(out, map[string]any{"label": c.Label, "rows": rows})
	}
	return out
}

func fig4JSON() map[string]any {
	cfg := dycore.DefaultConfig(4)
	cfg.Nlev = 8
	cfg.Qsize = 0
	s, err := dycore.NewSolver(cfg)
	check(err)
	ref := s.NewState()
	s.InitBaroclinicWave(ref)
	g := ref.Clone()
	const steps = 10
	for i := 0; i < steps; i++ {
		s.Step(ref)
	}
	job, err := core.NewParallelJob(cfg, exec.Athread, true, 4)
	check(err)
	local := job.Scatter(g)
	job.Run(local, steps)
	got := job.Gather(local)
	zmA := s.ZonalMeanT(ref, cfg.Nlev-1, 12)
	zmB := s.ZonalMeanT(got, cfg.Nlev-1, 12)
	maxd := 0.0
	for b := range zmA {
		if d := math.Abs(zmA[b] - zmB[b]); d > maxd {
			maxd = d
		}
	}
	return map[string]any{
		"control_zonal_mean_t": zmA, "test_zonal_mean_t": zmB, "max_diff_k": maxd,
	}
}

func fig5JSON() []map[string]any {
	rows := perf.Table1(perf.DefaultTable1Config())
	var out []map[string]any
	for _, r := range rows {
		out = append(out, map[string]any{
			"kernel":             r.Name,
			"mpe_over_intel":     r.Times[exec.MPE] / r.Times[exec.Intel],
			"openacc_speedup":    r.Speedup(exec.Intel, exec.OpenACC),
			"athread_speedup":    r.Speedup(exec.Intel, exec.Athread),
			"athread_vs_openacc": r.Times[exec.OpenACC] / r.Times[exec.Athread],
		})
	}
	return out
}

func fig6JSON() map[string]any {
	c30 := perf.DefaultCAMConfig(30)
	c120 := perf.DefaultCAMConfig(120)
	var ne30, ne120 []map[string]any
	for _, np := range []int{216, 600, 900, 1350, 5400} {
		ne30 = append(ne30, map[string]any{
			"procs":   np,
			"ori":     c30.SYPD(perf.VersionOri, np),
			"openacc": c30.SYPD(perf.VersionOpenACC, np),
			"athread": c30.SYPD(perf.VersionAthread, np),
		})
	}
	for _, np := range []int{2400, 9600, 14400, 21600, 24000, 28800} {
		ne120 = append(ne120, map[string]any{
			"procs":   np,
			"openacc": c120.SYPD(perf.VersionOpenACC, np),
			"athread": c120.SYPD(perf.VersionAthread, np),
		})
	}
	return map[string]any{"ne30": ne30, "ne120": ne120}
}

func fig7JSON() map[string]any {
	out := map[string]any{}
	for _, tc7 := range []struct {
		ne    int
		procs []int
		base  int
	}{
		{256, []int{4096, 8192, 16384, 32768, 65536, 131072}, 4096},
		{1024, []int{8192, 16384, 32768, 65536, 131072}, 8192},
	} {
		h := perf.DefaultHOMMEConfig(tc7.ne)
		var rows []map[string]any
		for _, np := range tc7.procs {
			rows = append(rows, map[string]any{
				"procs": np, "pflops": h.PFlops(np, true),
				"efficiency": h.Efficiency(np, tc7.base, true),
			})
		}
		out[keyNe(tc7.ne)] = rows
	}
	return out
}

func fig8JSON() []map[string]any {
	var out []map[string]any
	for _, e := range []int{48, 192, 650, 768} {
		for _, np := range []int{512, 2048, 8192, 32768, 131072} {
			w := perf.WeakScaling(e, np, 128, 4)
			out = append(out, map[string]any{
				"elems_per_proc": e, "procs": np, "pflops": w.PFlops,
				"efficiency": perf.WeakEfficiency(e, np, 512, 128, 4),
			})
		}
	}
	return out
}

func fig9JSON() []map[string]any {
	vp := tc.KatrinaLikeVortex()
	var out []map[string]any
	for _, ne := range []int{4, 12} {
		run, err := tc.RunResolution(ne, 8, 24, 12, vp)
		check(err)
		out = append(out, map[string]any{
			"ne": ne, "grid_km": run.GridKM, "initial_kt": run.InitialKt,
			"final_kt": run.FinalKt, "retention": run.FinalKt / run.InitialKt,
		})
	}
	return out
}

func fig10JSON() []map[string]any {
	h := perf.DefaultHOMMEConfig(1024)
	var out []map[string]any
	for np := 4096; np <= 131072; np *= 2 {
		tNo, _ := h.StepTime(np, false)
		tOv, _ := h.StepTime(np, true)
		out = append(out, map[string]any{
			"procs": np, "no_overlap_s": tNo, "overlap_s": tOv,
			"saving": (tNo - tOv) / tNo,
		})
	}
	return out
}

func keyNe(ne int) string {
	if ne == 256 {
		return "ne256"
	}
	return "ne1024"
}
