package main

import (
	"fmt"
	"sort"
	"strings"

	"swcam/internal/obs"
)

// benchParity compares the per-backend kernel Cost columns (calls,
// flops, bytes) of one BENCH file against a reference BENCH file and
// fails on any difference — the cross-backend guarantee the
// single-source kernel layer makes is that counts can only change when
// a primitive's attribution changes, and that is a reviewed event, not
// drift. Wall-clock columns (ns, sypd, wall_seconds) are measurements
// and are never compared.
//
// allowFlops lists base kernel names (the ".boundary"/".inner" split
// suffix is stripped before matching) whose flop column MAY differ —
// used exactly once per intended accounting fix, e.g. the hypervis_dp2
// update re-derivation (12/16·np² → 8·np²), and spelled out in CI so
// the exemption is as visible as the change.
func benchParity(newPath, againstPath, allowFlops string) error {
	nf, err := obs.LoadBenchFile(newPath)
	if err != nil {
		return err
	}
	of, err := obs.LoadBenchFile(againstPath)
	if err != nil {
		return err
	}
	allowed := map[string]bool{}
	for _, n := range strings.Split(allowFlops, ",") {
		if n = strings.TrimSpace(n); n != "" {
			allowed[n] = true
		}
	}
	if nc, oc := nf.Config, of.Config; nc.Ne != oc.Ne || nc.Nlev != oc.Nlev ||
		nc.Qsize != oc.Qsize || nc.Steps != oc.Steps || nc.Ranks != oc.Ranks {
		return fmt.Errorf("benchtab: config mismatch: %s ran %+v, %s ran %+v",
			newPath, nc, againstPath, oc)
	}

	base := func(kernel string) string {
		kernel = strings.TrimSuffix(kernel, ".boundary")
		return strings.TrimSuffix(kernel, ".inner")
	}

	fmt.Printf("== Kernel Cost parity: %s vs %s ==\n", newPath, againstPath)
	violations := 0
	backends := make([]string, 0, len(of.Backends))
	for bn := range of.Backends {
		backends = append(backends, bn)
	}
	sort.Strings(backends)
	for _, bn := range backends {
		ob := of.Backends[bn]
		nb, ok := nf.Backends[bn]
		if !ok {
			fmt.Printf("%s: MISSING in %s\n", bn, newPath)
			violations++
			continue
		}
		kernels := make([]string, 0, len(ob.Kernels))
		for kn := range ob.Kernels {
			kernels = append(kernels, kn)
		}
		sort.Strings(kernels)
		fmt.Printf("%s:\n  %-34s %8s %14s %14s  %s\n", bn, "kernel", "calls", "flops", "bytes", "status")
		for _, kn := range kernels {
			nk, present := nb.Kernels[kn]
			if !present {
				fmt.Printf("  %-34s %8s %14s %14s  MISSING\n", kn, "-", "-", "-")
				violations++
				continue
			}
			old := ob.Kernels[kn]
			status := "ok"
			bad := false
			if nk.Calls != old.Calls {
				status = fmt.Sprintf("CALLS %d != %d", nk.Calls, old.Calls)
				bad = true
			} else if nk.Bytes != old.Bytes {
				status = fmt.Sprintf("BYTES %d != %d", nk.Bytes, old.Bytes)
				bad = true
			} else if nk.Flops != old.Flops {
				if allowed[base(kn)] {
					status = fmt.Sprintf("flops %d -> %d (allowed)", old.Flops, nk.Flops)
				} else {
					status = fmt.Sprintf("FLOPS %d != %d", nk.Flops, old.Flops)
					bad = true
				}
			}
			if bad {
				violations++
			}
			fmt.Printf("  %-34s %8d %14d %14d  %s\n", kn, nk.Calls, nk.Flops, nk.Bytes, status)
		}
		for kn := range nb.Kernels {
			if _, present := ob.Kernels[kn]; !present {
				fmt.Printf("  %-34s NEW kernel not in reference\n", kn)
				violations++
			}
		}
	}
	if violations > 0 {
		return fmt.Errorf("benchtab: %d kernel Cost parity violation(s)", violations)
	}
	fmt.Println("parity: all kernel Cost columns match")
	return nil
}
