// Command camsw runs the miniature CAM end to end — spectral-element
// dynamics plus the CAM5-lite physics suite — and reports stability
// diagnostics and the achieved simulation rate.
//
//	camsw -ne 8 -nlev 16 -hours 6 -physics moist
//	camsw -ne 4 -nlev 8 -hours 24 -physics heldsuarez
//	camsw -ne 4 -nlev 8 -hours 2 -parallel 4 -backend athread
//	camsw -ne 4 -nlev 8 -hours 2 -parallel 2 -phys-workers 0
//	camsw -ne 2 -nlev 8 -hours 1 -parallel 3 -faults chaos:6@42 -checkpoint-every 2 -recovery ladder -spares 1
//
// With -parallel N the full model — dynamics and the physics suite —
// runs through the distributed driver (N simulated core groups, halo
// exchanges, chosen execution backend) instead of the serial solver.
//
// -phys-workers sizes the work-stealing column-physics pool (per rank
// under -parallel): 0 auto-sizes to the machine and downshifts to
// serial on grids too small to amortize the fan-out; results are
// bit-identical for every value.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"swcam/internal/core"
	"swcam/internal/dycore"
	"swcam/internal/exec"
	"swcam/internal/mpirt"
	"swcam/internal/obs"
	"swcam/internal/physics"
)

// watchSignals arms SIGINT/SIGTERM handling and returns a poll: the
// run loops check it between steps, so a signal finishes the current
// step, writes the final checkpoint, and flushes -obs/-trace instead
// of killing the process mid-write.
func watchSignals() func() bool {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	fired := false
	return func() bool {
		if fired {
			return true
		}
		select {
		case <-ch:
			fired = true
			signal.Stop(ch) // a second signal kills immediately
			fmt.Println("camsw: signal received; finishing the current step and shutting down cleanly")
		default:
		}
		return fired
	}
}

func main() {
	ne := flag.Int("ne", 4, "cubed-sphere resolution (elements per edge)")
	nlev := flag.Int("nlev", 8, "vertical levels")
	qsize := flag.Int("qsize", 3, "tracers (moist physics uses qv/qc/qr)")
	hours := flag.Float64("hours", 3, "simulated hours")
	phys := flag.String("physics", "moist", "physics suite: moist | heldsuarez | none")
	parallel := flag.Int("parallel", 0, "run dynamics distributed over N ranks (0 = serial)")
	backendName := flag.String("backend", "athread", "execution backend for -parallel: intel|mpe|openacc|athread")
	restart := flag.String("restart", "", "resume from a checkpoint file")
	checkpoint := flag.String("checkpoint", "", "write a checkpoint file at the end")
	history := flag.String("history", "", "write lat-lon history frames to this file")
	faults := flag.String("faults", "", "fault-injection spec for -parallel, comma-separated: kill:R@OP, corrupt:R@OP, drop:R@OP, delay:R@OP:MS, flipState:R@OP, flipCheckpoint:R@OP, flipBuddy:R@OP, chaos:N@SEED, chaosflip:N@SEED")
	ckEvery := flag.Int("checkpoint-every", 0, "with -parallel: checkpoint every N steps and auto-recover from faults (0 = no supervision)")
	recovery := flag.String("recovery", "ladder", "with -checkpoint-every: recovery strategy: ladder (retransmit, then rebuild the failed rank from its buddy's in-memory copy, then global rollback) | global (rollback-only) | off")
	spares := flag.Int("spares", 0, "with -recovery ladder: spare ranks available to replace permanently dead ranks (0 = shrink onto the survivors instead)")
	obsOn := flag.Bool("obs", false, "collect and print the unified observability report (spans, counters, step report)")
	tracePath := flag.String("trace", "", "write a Chrome about://tracing JSON trace to this file (implies -obs)")
	dynWorkers := flag.Int("dyn-workers", 0, "with -parallel: intra-rank dynamics workers per rank (0 = adaptive: sized per rank from its element count, downshifting to serial on small ranks; 1 = serial; results are bit-identical for any value)")
	physWorkers := flag.Int("phys-workers", 1, "work-stealing column-physics workers, serial model and per -parallel rank (0 = auto-size to the machine, downshifting to serial on small grids; 1 = serial; results are bit-identical for any value)")
	scrubEvery := flag.Int("scrub-every", 0, "with -parallel: enable the silent-data-corruption defenses — CRC-seal each rank's resident state every N steps and re-verify it at the next at-rest window, plus the global mass/energy/tracer conservation ledger (0 = off; 1 catches every resident flip before a checkpoint can capture it)")
	ckptGenerations := flag.Int("ckpt-generations", 1, "with -checkpoint-every: verified checkpoint generations to retain; a restore target failing CRC verification escalates to the next-older generation instead of restoring garbage")
	flag.Parse()

	// Flag 0 = auto maps to the config convention's negative sentinel
	// (0 is the legacy "serial" encoding there).
	physReq := *physWorkers
	if physReq == 0 {
		physReq = -1
	}

	var probe *obs.Probe
	if *obsOn || *tracePath != "" {
		probe = obs.NewProbe()
	}
	interrupted := watchSignals()

	switch *recovery {
	case "ladder", "global", "off":
	default:
		fmt.Fprintf(os.Stderr, "camsw: unknown -recovery %q (ladder|global|off)\n", *recovery)
		os.Exit(2)
	}
	if *scrubEvery < 0 {
		fmt.Fprintln(os.Stderr, "camsw: -scrub-every must be >= 0")
		os.Exit(2)
	}
	if *ckptGenerations < 1 {
		fmt.Fprintln(os.Stderr, "camsw: -ckpt-generations must be >= 1")
		os.Exit(2)
	}
	if *parallel > 0 {
		runParallel(*ne, *nlev, *qsize, *hours, *parallel, *backendName, *phys, *faults, *ckEvery, *checkpoint, *recovery, *spares, probe, *tracePath, *dynWorkers, physReq, *scrubEvery, *ckptGenerations, interrupted)
		return
	}
	if *faults != "" || *ckEvery > 0 {
		fmt.Fprintln(os.Stderr, "camsw: -faults and -checkpoint-every require -parallel")
		os.Exit(2)
	}

	cfg := core.DefaultConfig(*ne)
	cfg.Dycore.Nlev = *nlev
	cfg.Dycore.Qsize = *qsize
	cfg.PhysWorkers = physReq
	switch *phys {
	case "moist":
		cfg.Physics = physics.Moist
	case "heldsuarez":
		cfg.Physics = physics.HeldSuarezMode
		cfg.Dycore.Qsize = 0
	case "none":
		cfg.Physics = physics.HeldSuarezMode // suite exists but is cheap
		cfg.PhysEvery = 1 << 30
		cfg.Dycore.Qsize = 0
	default:
		fmt.Fprintf(os.Stderr, "camsw: unknown physics %q\n", *phys)
		os.Exit(2)
	}

	m, err := core.NewModel(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "camsw:", err)
		os.Exit(1)
	}
	if probe != nil {
		m.Attach(probe)
		probe.Tracer.NameProcess(0, "serial model")
	}
	if *restart != "" {
		st, step, err := core.LoadCheckpoint(*restart)
		if err != nil {
			fmt.Fprintln(os.Stderr, "camsw: restart:", err)
			os.Exit(1)
		}
		m.State.CopyFrom(st)
		m.Solver.SetStep(step)
		fmt.Printf("camsw: resumed from %s at step %d\n", *restart, step)
	} else {
		m.Solver.InitBaroclinicWave(m.State)
		if cfg.Dycore.Qsize > 0 {
			moisten(m)
		}
	}

	steps := int(*hours * 3600 / cfg.Dycore.Dt)
	if steps < 1 {
		steps = 1
	}
	fmt.Printf("camsw: ne%d nlev=%d qsize=%d dt=%.0fs physics=%s: %d steps (%.1f h)\n",
		*ne, *nlev, cfg.Dycore.Qsize, cfg.Dycore.Dt, *phys, steps, *hours)

	var hw *core.HistoryWriter
	if *history != "" {
		f, err := os.Create(*history)
		if err != nil {
			fmt.Fprintln(os.Stderr, "camsw: history:", err)
			os.Exit(1)
		}
		defer f.Close()
		fields := []string{"T", "U", "V"}
		if cfg.Dycore.Qsize > 0 {
			fields = append(fields, "QV")
		}
		hw, err = core.NewHistoryWriter(f, core.NewSampler(m.Solver.Mesh, 72, 36), fields)
		if err != nil {
			fmt.Fprintln(os.Stderr, "camsw: history:", err)
			os.Exit(1)
		}
		defer hw.Close()
	}

	start := time.Now()
	report := steps / 5
	if report < 1 {
		report = 1
	}
	done := 0
	for i := 1; i <= steps; i++ {
		m.Step()
		done = i
		if hw != nil && (i%report == 0 || i == steps) {
			if err := core.WriteHistoryFrameForModel(hw, m); err != nil {
				fmt.Fprintln(os.Stderr, "camsw: history:", err)
				os.Exit(1)
			}
		}
		if i%report == 0 || i == steps {
			fmt.Printf("  step %4d (%5.1f h): maxwind %6.1f m/s  mass %.6e  minDP %8.2f  precip %.3f kg/m2\n",
				i, m.SimHours(), m.Solver.MaxWind(m.State), m.Solver.TotalMass(m.State),
				m.Solver.MinDP(m.State), m.TotalPrecip)
		}
		if interrupted() {
			break
		}
	}
	wall := time.Since(start).Seconds()
	simSeconds := float64(done) * cfg.Dycore.Dt
	sypd := obs.SYPD(simSeconds, wall)
	if done < steps {
		fmt.Printf("camsw: interrupted after step %d/%d\n", done, steps)
	}
	fmt.Printf("done: %.1fs wall, local-host simulation rate %.1f SYPD\n", wall, sypd)
	fmt.Println("(for modeled TaihuLight SYPD at scale, see: benchtab -fig 6)")
	finishObs(probe, *tracePath, obs.ReportInput{Steps: done, SimSeconds: simSeconds, WallSeconds: wall})
	if *checkpoint != "" {
		if err := core.SaveCheckpoint(*checkpoint, m.State, m.Solver.StepCount()); err != nil {
			fmt.Fprintln(os.Stderr, "camsw: checkpoint:", err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint written: %s\n", *checkpoint)
	}
}

func moisten(m *core.Model) { moistenState(m.State, m.Solver.Cfg) }

// moistenState seeds a sigma-shaped water-vapor load into tracer 0 so
// the moist suite's convection and microphysics have work to do.
func moistenState(st *dycore.State, cfg dycore.Config) {
	npsq := cfg.Np * cfg.Np
	for ei := range st.Qdp {
		qdp := st.QdpAt(ei, 0)
		for k := 0; k < cfg.Nlev; k++ {
			sig := float64(k+1) / float64(cfg.Nlev)
			for n := 0; n < npsq; n++ {
				i := k*npsq + n
				qdp[i] = 0.016 * sig * sig * sig * st.DP[ei][i]
			}
		}
	}
}

// finishObs prints the step report and unified counters and, when
// requested, writes the Chrome trace. Inert on a nil probe.
func finishObs(p *obs.Probe, tracePath string, in obs.ReportInput) {
	if p == nil {
		return
	}
	rep := obs.BuildStepReport(p.Kernels, p.Reg, in)
	fmt.Print(rep.Text())
	fmt.Println("== counters ==")
	p.Reg.WriteText(os.Stdout)
	if tracePath != "" {
		if err := p.Tracer.WriteChromeTraceFile(tracePath); err != nil {
			fmt.Fprintln(os.Stderr, "camsw: trace:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written: %s (%d events; load in chrome://tracing or ui.perfetto.dev)\n",
			tracePath, p.Tracer.Len())
	}
}

func runParallel(ne, nlev, qsize int, hours float64, nranks int, backendName, physMode, faultSpec string, ckEvery int, ckPath, recoveryMode string, spares int, probe *obs.Probe, tracePath string, dynWorkers, physReq, scrubEvery, ckptGenerations int, interrupted func() bool) {
	var backend exec.Backend
	switch backendName {
	case "intel":
		backend = exec.Intel
	case "mpe":
		backend = exec.MPE
	case "openacc":
		backend = exec.OpenACC
	case "athread":
		backend = exec.Athread
	default:
		fmt.Fprintf(os.Stderr, "camsw: unknown backend %q\n", backendName)
		os.Exit(2)
	}
	cfg := dycore.DefaultConfig(ne)
	cfg.Nlev = nlev
	cfg.Qsize = qsize
	job, err := core.NewParallelJob(cfg, backend, true, nranks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "camsw:", err)
		os.Exit(1)
	}
	job.SetDynWorkers(dynWorkers)
	def := core.DefaultConfig(ne) // physics cadence and SST profile defaults
	switch physMode {
	case "moist":
		if qsize < 1 {
			fmt.Fprintln(os.Stderr, "camsw: -physics moist needs -qsize >= 1")
			os.Exit(2)
		}
		if err := job.EnablePhysics(physics.Moist, def.PhysEvery, def.SST, def.SSTDelta); err != nil {
			fmt.Fprintln(os.Stderr, "camsw:", err)
			os.Exit(1)
		}
		job.SetPhysWorkers(physReq)
	case "heldsuarez":
		if err := job.EnablePhysics(physics.HeldSuarezMode, def.PhysEvery, def.SST, def.SSTDelta); err != nil {
			fmt.Fprintln(os.Stderr, "camsw:", err)
			os.Exit(1)
		}
		job.SetPhysWorkers(physReq)
	case "none":
	default:
		fmt.Fprintf(os.Stderr, "camsw: unknown physics %q\n", physMode)
		os.Exit(2)
	}
	if scrubEvery > 0 {
		job.EnableIntegrity(scrubEvery)
	}
	if probe != nil {
		job.Instrument(probe)
		for r := 0; r < nranks; r++ {
			probe.Tracer.NameProcess(r, fmt.Sprintf("rank %d (%v)", r, backend))
		}
	}
	s, _ := dycore.NewSolver(cfg)
	g := s.NewState()
	s.InitBaroclinicWave(g)
	if physMode == "moist" && qsize > 0 {
		moistenState(g, cfg)
	}
	local := job.Scatter(g)

	steps := int(hours * 3600 / cfg.Dt)
	if steps < 1 {
		steps = 1
	}
	if faultSpec != "" {
		// A rank performs on the order of 40 communication ops per step;
		// chaos:N@SEED events are spread over that estimated span.
		plan, err := mpirt.ParseFaultPlan(faultSpec, nranks, int64(steps)*40)
		if err != nil {
			fmt.Fprintln(os.Stderr, "camsw:", err)
			os.Exit(2)
		}
		job.Faults = plan
		job.RecvTimeout = 2 * time.Second // so dropped messages are detected
		job.CheckEvery = 1                // blowup watchdog every step
	}
	physStr := "off"
	if physMode != "none" {
		physStr = fmt.Sprintf("%s on %d workers", physMode, job.PhysWorkers())
	}
	fmt.Printf("camsw: distributed model, %d ranks, %v backend, %d steps, %d intra-rank workers, physics %s\n",
		nranks, backend, steps, job.EngineWorkers(), physStr)
	// The run is chunked so the loop can notice SIGINT/SIGTERM between
	// chunks: a signal finishes the current chunk, then the normal tail
	// (gather, final checkpoint, obs flush) runs.
	chunk := ckEvery
	if chunk < 1 {
		if chunk = steps / 20; chunk < 1 {
			chunk = 1
		}
	}
	start := time.Now()
	var stats core.RunStats
	done := 0
	if ckEvery > 0 && recoveryMode != "off" {
		rj := core.NewResilientJob(job)
		rj.CheckpointEvery = ckEvery
		rj.MaxRetries = 10
		rj.DiskPath = ckPath
		rj.Spares = spares
		rj.Generations = ckptGenerations
		if recoveryMode == "ladder" {
			rj.Mode = core.ModeLadder
		} else {
			rj.Mode = core.ModeGlobal
		}
		rj.OnEvent = func(e core.RecoveryEvent) {
			if e.Kind != "checkpoint" {
				fmt.Printf("  recovery: %v\n", e)
			}
		}
		var agg core.ResilientStats
		for done < steps && !interrupted() {
			n := chunk
			if steps-done < n {
				n = steps - done
			}
			rs, err := rj.Run(local, n)
			// A shrink recovery replaces the state slice (the world lost
			// a rank); the supervisor owns the current one.
			local = rj.States()
			if err != nil {
				fmt.Fprintln(os.Stderr, "camsw:", err)
				os.Exit(1)
			}
			addResilientStats(&agg, rs)
			done += n
		}
		stats = agg.Run
		fmt.Printf("  resilience (%s): %d ckpt, %d/%d retransmits recovered, %d localized, %d respawn, %d shrink, %d rollback, %.1f ms in recovery\n",
			recoveryMode, agg.Checkpoints, agg.RetxRecovered, agg.RetxAttempts,
			agg.Localized, agg.Respawns, agg.Shrinks, agg.Rollbacks,
			float64(agg.RecoveryNs)/1e6)
		if agg.Poisoned+agg.Escalations > 0 {
			fmt.Printf("  integrity: %d checkpoint copies poisoned, %d restore escalations past poisoned generations\n",
				agg.Poisoned, agg.Escalations)
		}
		if probe != nil {
			fmt.Printf("  recovery counters: %d steps replayed, %d giveups\n",
				probe.Reg.CounterValue("core.recovery.replayed_steps"),
				probe.Reg.CounterValue("core.recovery.giveups"))
		}
	} else {
		for done < steps && !interrupted() {
			n := chunk
			if steps-done < n {
				n = steps - done
			}
			st, err := job.RunChecked(local, n)
			if err != nil {
				fmt.Fprintln(os.Stderr, "camsw:", err)
				fmt.Fprintln(os.Stderr, "camsw: (use -checkpoint-every N to recover from faults automatically)")
				os.Exit(1)
			}
			stats.Halo.Add(st.Halo)
			stats.Cost.Add(st.Cost)
			stats.RetxAttempts += st.RetxAttempts
			stats.RetxRecovered += st.RetxRecovered
			stats.Steps = st.Steps
			done += n
		}
	}
	wall := time.Since(start).Seconds()
	if done < steps {
		fmt.Printf("camsw: interrupted after step %d/%d\n", done, steps)
	}
	got := job.Gather(local)
	fmt.Printf("  maxwind %.1f m/s, mass %.6e\n", s.MaxWind(got), s.TotalMass(got))
	if physMode != "none" {
		ps := job.PhysStats()
		fmt.Printf("  physics: %d workers, %d chunks, %d steals / %d attempts, precip %.3f kg/m2\n",
			job.PhysWorkers(), ps.Chunks, ps.Steals, ps.StealAttempts, job.TotalPrecip)
	}
	fmt.Printf("  halo: %d msgs, %.2f MB wire, %.2f MB staged\n",
		stats.Halo.Msgs, float64(stats.Halo.WireBytes)/1e6, float64(stats.Halo.StagingBytes)/1e6)
	fmt.Printf("  kernels: %.2e flops (%.0f%% vector), %.2f MB DMA, %d reg msgs\n",
		float64(stats.Cost.Flops()),
		100*float64(stats.Cost.FlopsVector)/float64(stats.Cost.Flops()+1),
		float64(stats.Cost.MemBytes)/1e6, stats.Cost.RegMsgs)
	fmt.Printf("done in %.1fs wall\n", wall)
	if ckPath != "" {
		if err := core.SaveCheckpoint(ckPath, got, job.StepCount()); err != nil {
			fmt.Fprintln(os.Stderr, "camsw: checkpoint:", err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint written: %s\n", ckPath)
	}
	finishObs(probe, tracePath, obs.ReportInput{
		Steps: done, SimSeconds: float64(done) * cfg.Dt, WallSeconds: wall,
	})
}

// addResilientStats folds one chunk's supervision stats into the run
// aggregate.
func addResilientStats(agg *core.ResilientStats, rs core.ResilientStats) {
	agg.Run.Halo.Add(rs.Run.Halo)
	agg.Run.Cost.Add(rs.Run.Cost)
	agg.Run.Steps = rs.Run.Steps
	agg.Run.RetxAttempts += rs.Run.RetxAttempts
	agg.Run.RetxRecovered += rs.Run.RetxRecovered
	agg.Checkpoints += rs.Checkpoints
	agg.Rollbacks += rs.Rollbacks
	agg.Localized += rs.Localized
	agg.Respawns += rs.Respawns
	agg.Shrinks += rs.Shrinks
	agg.Poisoned += rs.Poisoned
	agg.Escalations += rs.Escalations
	agg.RetxAttempts += rs.RetxAttempts
	agg.RetxRecovered += rs.RetxRecovered
	agg.RecoveryNs += rs.RecoveryNs
	agg.BuddyBytes += rs.BuddyBytes
	agg.Events = append(agg.Events, rs.Events...)
}
