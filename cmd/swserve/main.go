// Command swserve runs the ensemble forecast service: N perturbed-IC
// members integrating continuously under supervision, answering HTTP
// queries from versioned snapshots, degrading gracefully through member
// crashes instead of dying.
//
//	swserve -members 3 -ne 4 -nlev 8 -addr 127.0.0.1:8090
//	swserve -members 3 -kills 1@3,1@9 -faults chaos:4@42
//
// Endpoints: /healthz /readyz /v1/config /v1/members /v1/field
// /v1/point /v1/ensemble /v1/track /v1/metrics. SIGINT/SIGTERM drains:
// readiness flips off, in-flight requests finish, members complete
// their current cycle and checkpoint, observability flushes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"swcam/internal/dycore"
	"swcam/internal/exec"
	"swcam/internal/obs"
	"swcam/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8090", "listen address")
	members := flag.Int("members", 3, "ensemble size")
	ne := flag.Int("ne", 4, "cubed-sphere resolution (elements per edge)")
	nlev := flag.Int("nlev", 8, "vertical levels")
	qsize := flag.Int("qsize", 1, "tracers")
	ranks := flag.Int("ranks", 2, "simulated core groups per member")
	cycleSteps := flag.Int("cycle-steps", 2, "dynamics steps per snapshot publish")
	horizonCycles := flag.Int("horizon-cycles", 0, "forecast horizon in cycles; members complete there and keep serving their final snapshot (0 = integrate forever)")
	dynWorkers := flag.Int("dyn-workers", 1, "intra-rank dynamics workers")
	backendName := flag.String("backend", "athread", "execution backend: intel|mpe|openacc|athread")
	ic := flag.String("ic", "vortex", "base initial condition: vortex|barowave")
	perturb := flag.Float64("perturb", 0.01, "member IC perturbation amplitude, K")
	seed := flag.Int64("seed", 42, "deterministic seed (perturbations, jitter, kills)")
	recovery := flag.String("recovery", "ladder", "intra-member recovery: ladder|global")
	spares := flag.Int("spares", 0, "spare ranks per member for ladder respawn")
	faults := flag.String("faults", "", "mpirt fault spec injected inside each member's world")
	kills := flag.String("kills", "", "injected member crashes: member@cycle,member@cycle,...")
	quarantineAfter := flag.Int("quarantine-after", 5, "consecutive crashes before a member is quarantined")
	maxConcurrent := flag.Int("max-concurrent", 8, "requests executing at once")
	maxQueue := flag.Int("max-queue", 64, "admission queue bound (excess sheds with 429)")
	deadlineMs := flag.Int("deadline-ms", 2000, "default per-request deadline")
	minReady := flag.Int("min-ready", 1, "members with snapshots required for readiness")
	ckDir := flag.String("checkpoint-dir", "", "drain writes member_<i>.ckpt here (empty = skip)")
	obsOn := flag.Bool("obs", false, "print the counter registry on exit")
	flag.Parse()

	var backend exec.Backend
	switch *backendName {
	case "intel":
		backend = exec.Intel
	case "mpe":
		backend = exec.MPE
	case "openacc":
		backend = exec.OpenACC
	case "athread":
		backend = exec.Athread
	default:
		fmt.Fprintf(os.Stderr, "swserve: unknown backend %q\n", *backendName)
		os.Exit(2)
	}
	plan, err := serve.ParseKillPlan(*kills)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swserve:", err)
		os.Exit(2)
	}

	cfg := dycore.DefaultConfig(*ne)
	cfg.Nlev = *nlev
	cfg.Qsize = *qsize
	probe := obs.NewProbe()
	sup, err := serve.NewSupervisor(serve.Config{
		Members:         *members,
		Dycore:          cfg,
		Backend:         backend,
		Ranks:           *ranks,
		CycleSteps:      *cycleSteps,
		MaxCycles:       *horizonCycles,
		DynWorkers:      *dynWorkers,
		IC:              *ic,
		PerturbAmp:      *perturb,
		Seed:            *seed,
		Recovery:        *recovery,
		Spares:          *spares,
		Faults:          *faults,
		Kills:           plan,
		QuarantineAfter: *quarantineAfter,
	}, probe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swserve:", err)
		os.Exit(1)
	}
	srv := serve.NewServer(sup, serve.ServerConfig{
		MaxConcurrent:   *maxConcurrent,
		MaxQueue:        *maxQueue,
		DefaultDeadline: time.Duration(*deadlineMs) * time.Millisecond,
		MinReady:        *minReady,
	})
	hs := &http.Server{Addr: *addr, Handler: srv}

	sup.Start()
	fmt.Printf("swserve: %d members (%s, ne%d nlev=%d, %d ranks each, %v backend), cycle = %d steps\n",
		*members, *ic, *ne, *nlev, *ranks, backend, *cycleSteps)
	fmt.Printf("swserve: listening on http://%s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "swserve:", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Printf("swserve: %v received; draining\n", s)
	}

	// Drain order matters: stop advertising readiness first, then let
	// in-flight requests finish, then let members complete their cycle
	// (and publish), then persist and flush.
	srv.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "swserve: shutdown:", err)
	}
	sup.Stop()
	if *ckDir != "" {
		if err := sup.Checkpoint(*ckDir); err != nil {
			fmt.Fprintln(os.Stderr, "swserve: checkpoint:", err)
			os.Exit(1)
		}
		fmt.Printf("swserve: member checkpoints written to %s\n", *ckDir)
	}
	if *obsOn {
		fmt.Println("== counters ==")
		probe.Reg.WriteText(os.Stdout)
	}
	for _, m := range sup.Members() {
		fmt.Printf("swserve: member %d: %s, %d restarts\n", m.Index(), m.State(), m.Restarts())
	}
	fmt.Println("swserve: drained cleanly")
}
