// Command katrina reproduces the Figure 9 experiment: a Katrina-like
// warm-core vortex integrated at two resolutions, tracked through its
// lifecycle, and verified against the NHC best track of hurricane
// Katrina (track positions and maximum-sustained-wind series).
//
//	katrina -coarse 4 -fine 12 -steps 24
//
// The paper's central claim — the 100 km grid cannot sustain the storm
// while the 25 km grid follows the observed track and intensity — shows
// up here as the retention contrast between the two grids, plus the
// tracker-vs-best-track verification machinery on the observed data.
package main

import (
	"flag"
	"fmt"
	"os"

	"swcam/internal/tc"
)

func main() {
	coarse := flag.Int("coarse", 4, "coarse resolution (ne); paper uses ne30 = 100 km")
	fine := flag.Int("fine", 12, "fine resolution (ne); paper uses ne120 = 25 km")
	nlev := flag.Int("nlev", 8, "vertical levels")
	steps := flag.Int("steps", 24, "dynamics steps to integrate")
	flag.Parse()

	vp := tc.KatrinaLikeVortex()
	fmt.Printf("katrina: vortex at (%.1fW, %.1fN), dp=%.0f hPa, steering (%.1f, %.1f) m/s\n\n",
		360-vp.LonC*180/3.14159265, vp.LatC*180/3.14159265, vp.DeltaP/100, vp.SteerU, vp.SteerV)

	fmt.Println("-- resolution sensitivity (Figure 9a/9b) --")
	type result struct {
		run tc.ResolutionRun
		ne  int
	}
	var results []result
	for _, ne := range []int{*coarse, *fine} {
		run, err := tc.RunResolution(ne, *nlev, *steps, max(1, *steps/4), vp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "katrina:", err)
			os.Exit(1)
		}
		results = append(results, result{run, ne})
		fmt.Printf("ne%-4d (%4.0f km): init %5.1f kt -> final %5.1f kt (retention %.2f)\n",
			ne, run.GridKM, run.InitialKt, run.FinalKt, run.FinalKt/run.InitialKt)
		for _, f := range run.Fixes {
			fmt.Printf("   t=%5.1fh  centre (%7.2fE, %6.2fN)  msw %5.1f kt  minps %7.1f hPa\n",
				f.Hours, f.Lon*180/3.14159265, f.Lat*180/3.14159265, f.MSWkt(), f.MinPs/100)
		}
	}
	retC := results[0].run.FinalKt / results[0].run.InitialKt
	retF := results[1].run.FinalKt / results[1].run.InitialKt
	fmt.Printf("\nfine grid retains %.0f%% of the vortex; coarse grid %.0f%% —\n", 100*retF, 100*retC)
	fmt.Println("the Figure 9a/9b contrast: resolution decides whether the storm exists.")

	fmt.Println("\n-- observed lifecycle (NHC best track, Figure 9c/9d reference) --")
	fmt.Printf("%6s %8s %8s %7s %8s\n", "hour", "lat", "lon", "msw kt", "min hPa")
	for i, e := range tc.KatrinaBestTrack {
		if i%2 != 0 {
			continue // 12-hourly for brevity
		}
		fmt.Printf("%6.0f %7.1fN %7.1fW %7.0f %8.0f\n",
			e.Hours, e.LatDeg, 360-e.LonDeg, e.MSWkt, e.MinPhPa)
	}
	kt, h := tc.KatrinaPeak()
	fmt.Printf("peak: %.0f kt at hour %.0f (category 5, 902 hPa)\n", kt, h)

	// Track verification demo: the tracker's error metric applied to the
	// fine run's drift vs the early best track (the idealized vortex is
	// steered with Katrina's genesis-phase motion vector).
	fmt.Println("\n-- track verification machinery --")
	fixes := results[1].run.Fixes
	for _, f := range fixes {
		obs := tc.KatrinaAt(f.Hours)
		fmt.Printf("   t=%5.1fh  track error vs obs %7.1f km\n",
			f.Hours, tc.TrackError(f, obs.LonDeg, obs.LatDeg))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
