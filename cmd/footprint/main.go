// Command footprint runs the memory-footprint analysis tool (§7.2 of
// the paper) over the dycore kernel set at a chosen problem shape,
// printing the LDM working sets and the tiling each kernel needs to fit
// the 64 KB scratchpad — the decision log the paper's source-to-source
// tooling produced for CAM's hundreds of kernels.
//
//	footprint -nlev 128 -qsize 25
package main

import (
	"flag"
	"fmt"

	"swcam/internal/footprint"
	"swcam/internal/sw"
)

func main() {
	nlev := flag.Int("nlev", 128, "vertical levels")
	nfields := flag.Int("nfields", 8, "whole-element fields for the OpenACC estimate")
	flag.Parse()

	fmt.Printf("LDM budget: %d KB per CPE\n\n", sw.LDMBytes/1024)
	kernels := []footprint.Kernel{
		footprint.EulerAthreadKernel(4, *nlev),
		footprint.RHSAthreadKernel(4, *nlev),
		footprint.OpenACCWholeElementKernel(4, *nlev, *nfields),
	}
	for _, k := range kernels {
		fmt.Println(footprint.Analyze(k))
	}
	fmt.Println("\nthe Athread engines hard-code the Figure 2 vertical blocking")
	fmt.Printf("(nlev/8 = %d levels per CPE); the analyzer verifies it fits.\n", *nlev/8)
}
