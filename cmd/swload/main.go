// Command swload drives a running swserve with a representative read
// mix, measures latency percentiles from the client side, asserts the
// service-level objectives, and writes the result as the `serving`
// block of a BENCH file.
//
//	swload -addr http://127.0.0.1:8090 -duration 20s -workers 4 \
//	       -bench-dir bench -max-p99-ms 250 -require-stale -max-5xx 0
//
// Exit status is nonzero if any enabled assertion fails: the command is
// CI's service-smoke check as much as a benchmark tool.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	"swcam/internal/obs"
	"swcam/internal/serve"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8090", "service base URL")
	duration := flag.Duration("duration", 10*time.Second, "load window")
	workers := flag.Int("workers", 4, "concurrent closed-loop clients")
	deadlineMs := flag.Int("deadline-ms", 0, "per-request deadline sent to the server (0 = server default)")
	seed := flag.Int64("seed", 1, "request-mix seed")
	benchDir := flag.String("bench-dir", "", "write BENCH_<n>.json with a serving block here")
	maxP99 := flag.Float64("max-p99-ms", 0, "fail if p99 latency exceeds this (0 = no bound)")
	max5xx := flag.Int64("max-5xx", 0, "fail if more than this many 5xx responses (default 0: any 5xx fails)")
	requireStale := flag.Bool("require-stale", false, "fail unless at least one response was served stale (proves degraded serving happened)")
	waitReady := flag.Duration("wait-ready", 30*time.Second, "wait up to this long for /readyz before loading")
	flag.Parse()

	client := &http.Client{Timeout: 30 * time.Second}
	if err := awaitReady(client, *addr, *waitReady); err != nil {
		fmt.Fprintln(os.Stderr, "swload:", err)
		os.Exit(1)
	}

	fmt.Printf("swload: %d workers against %s for %v\n", *workers, *addr, *duration)
	res, err := serve.RunLoad(serve.LoadConfig{
		BaseURL:    *addr,
		Duration:   *duration,
		Workers:    *workers,
		DeadlineMs: *deadlineMs,
		Seed:       *seed,
		Client:     client,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "swload:", err)
		os.Exit(1)
	}

	p50, p90, p99 := res.Percentile(50), res.Percentile(90), res.Percentile(99)
	fmt.Printf("swload: %d responses in %.1fs (%.1f req/s), %d transport errors\n",
		res.Requests, res.Duration.Seconds(), res.QPS(), res.Transport)
	fmt.Printf("swload: latency p50 %.2f ms, p90 %.2f ms, p99 %.2f ms\n", p50, p90, p99)
	statuses := make([]int, 0, len(res.ByStatus))
	for s := range res.ByStatus {
		statuses = append(statuses, s)
	}
	sort.Ints(statuses)
	for _, s := range statuses {
		fmt.Printf("swload:   %d: %d\n", s, res.ByStatus[s])
	}
	fmt.Printf("swload: %d shed (429), %d stale serves, %d 5xx\n", res.Shed429, res.Stale, res.Errors5xx)

	sv, cfg := buildServing(client, *addr, res, p50, p90, p99)
	if *benchDir != "" {
		f := obs.NewBenchFile(cfg)
		f.Serving = sv
		path, err := obs.WriteBenchFile(*benchDir, f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swload: bench:", err)
			os.Exit(1)
		}
		fmt.Printf("swload: wrote %s\n", path)
	}

	failed := false
	if res.Requests == 0 {
		fmt.Fprintln(os.Stderr, "swload: FAIL: no responses received")
		failed = true
	}
	if res.Transport > 0 {
		fmt.Fprintf(os.Stderr, "swload: FAIL: %d transport-level errors\n", res.Transport)
		failed = true
	}
	if res.Errors5xx > *max5xx {
		fmt.Fprintf(os.Stderr, "swload: FAIL: %d 5xx responses (max %d)\n", res.Errors5xx, *max5xx)
		failed = true
	}
	if *maxP99 > 0 && p99 > *maxP99 {
		fmt.Fprintf(os.Stderr, "swload: FAIL: p99 %.2f ms exceeds bound %.2f ms\n", p99, *maxP99)
		failed = true
	}
	if *requireStale && res.Stale == 0 {
		fmt.Fprintln(os.Stderr, "swload: FAIL: no stale serves observed (expected degraded serving under faults)")
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("swload: all assertions passed")
}

// awaitReady polls /readyz until it returns 200 or the budget expires.
func awaitReady(client *http.Client, base string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("service at %s not ready within %v", base, budget)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// buildServing assembles the BENCH serving block, pulling the model
// configuration and degradation counters from the service itself.
func buildServing(client *http.Client, base string, res *serve.LoadResult, p50, p90, p99 float64) (*obs.BenchServing, obs.BenchConfig) {
	cfg := obs.BenchConfig{Ne: 4, Nlev: 8, Steps: 1, Ranks: 1}
	members := 1
	if resp, err := client.Get(base + "/v1/config"); err == nil {
		var c struct {
			Members    int `json:"members"`
			Ne         int `json:"ne"`
			Nlev       int `json:"nlev"`
			Qsize      int `json:"qsize"`
			CycleSteps int `json:"cycle_steps"`
			Ranks      int `json:"ranks"`
		}
		if jerr := jsonDecode(resp, &c); jerr == nil && c.Members > 0 {
			members = c.Members
			cfg = obs.BenchConfig{Ne: c.Ne, Nlev: c.Nlev, Qsize: c.Qsize, Steps: c.CycleSteps, Ranks: c.Ranks}
		}
	}
	sv := &obs.BenchServing{
		Members:      members,
		DurationSecs: res.Duration.Seconds(),
		Requests:     res.Requests,
		QPS:          res.QPS(),
		P50Ms:        p50,
		P90Ms:        p90,
		P99Ms:        p99,
		Errors5xx:    res.Errors5xx,
		Shed429:      res.Shed429,
		StaleServes:  res.Stale,
	}
	if resp, err := client.Get(base + "/v1/members"); err == nil {
		var body struct {
			Members []struct {
				State    string `json:"state"`
				Restarts int64  `json:"restarts"`
			} `json:"members"`
		}
		if jerr := jsonDecode(resp, &body); jerr == nil {
			for _, m := range body.Members {
				sv.Restarts += m.Restarts
				if m.State == "quarantined" {
					sv.Quarantines++
				}
			}
		}
	}
	if resp, err := client.Get(base + "/v1/metrics"); err == nil {
		var metrics []struct {
			Name  string  `json:"name"`
			Type  string  `json:"type"`
			Value float64 `json:"value"`
		}
		if jerr := jsonDecode(resp, &metrics); jerr == nil {
			for _, m := range metrics {
				if m.Name == "serve.snapshots.torn" {
					sv.TornSnapshots = int64(m.Value)
				}
			}
		}
	}
	return sv, cfg
}

func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}
