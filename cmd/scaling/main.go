// Command scaling runs the scaling campaign. Two measured modes drive
// real goroutine-rank sweeps of the distributed runtime on this box
// (internal/scale) and land a validated `scaling` block in the BENCH
// trajectory; three model modes print the analytic TaihuLight machine
// model's curves (the old CSV tool, renamed model-*).
//
//	scaling -mode measured  -ne 8 -min-np 16 -max-np 256 -dir bench
//	scaling -mode calibrate -ne 8 -min-np 16 -max-np 256 -dir bench
//	scaling -mode model-strong  -ne 256 -base 4096 -min-np 4096 -max-np 131072
//	scaling -mode model-weak    -elems 650 -min-np 512 -max-np 131072
//	scaling -mode model-overlap -ne 1024 -min-np 4096 -max-np 131072
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"swcam/internal/exec"
	"swcam/internal/obs"
	"swcam/internal/perf"
	"swcam/internal/scale"
)

func main() {
	mode := flag.String("mode", "model-strong",
		"measured | calibrate | model-strong | model-weak | model-overlap")
	ne := flag.Int("ne", 0, "resolution (strong sweeps; model modes default 256)")
	elems := flag.Int("elems", 48, "elements per process for model-weak")
	base := flag.Int("base", 0, "efficiency baseline process count (model-strong; default min-np)")
	minNp := flag.Int("min-np", 0, "sweep start: goroutine ranks (measured) or processes (model)")
	maxNp := flag.Int("max-np", 0, "sweep end (inclusive), doubling from min-np")
	backendName := flag.String("backend", "athread", "measured-sweep backend: intel|mpe|openacc|athread")
	nlev := flag.Int("nlev", 8, "vertical levels for measured sweeps")
	qsize := flag.Int("qsize", 2, "tracer count for measured sweeps")
	steps := flag.Int("steps", 2, "dynamics steps per measured point")
	budgetMB := flag.Int("budget-mb", 512, "per-rank memory budget for measured sweeps, MiB (0 = unlimited)")
	weakElems := flag.Int("weak-elems", 6, "weak-curve target elements per rank")
	overlap := flag.Bool("overlap", true, "measured sweeps use the §7.6 boundary-first exchange")
	dir := flag.String("dir", "", "write BENCH_<n>.json with the scaling block to this directory")
	projectNe := flag.String("project-ne", "30,120,256,1024,3072,4000",
		"comma-separated resolutions for the calibrated extrapolation table")
	machineRanks := flag.Int("machine-ranks", perf.TotalCGs,
		"full-machine rank count the extrapolation targets (default TaihuLight's core groups)")
	flag.Parse()

	switch *mode {
	case "measured", "calibrate":
		runMeasured(*mode, *ne, *minNp, *maxNp, *backendName, *nlev, *qsize, *steps,
			*budgetMB, *weakElems, *overlap, *dir, *projectNe, *machineRanks)
	case "model-strong":
		h := perf.DefaultHOMMEConfig(defInt(*ne, 256))
		lo, hi := defInt(*minNp, 4096), defInt(*maxNp, 131072)
		b := defInt(*base, lo)
		fmt.Println("nprocs,pflops,efficiency,step_seconds")
		for np := lo; np <= hi; np *= 2 {
			t, _ := h.StepTime(np, true)
			fmt.Printf("%d,%.4f,%.4f,%.6f\n", np, h.PFlops(np, true),
				h.Efficiency(np, b, true), t)
		}
	case "model-weak":
		lo, hi := defInt(*minNp, 512), defInt(*maxNp, 131072)
		fmt.Println("nprocs,pflops,efficiency,step_seconds")
		for np := lo; np <= hi; np *= 2 {
			w := perf.WeakScaling(*elems, np, 128, 4)
			fmt.Printf("%d,%.4f,%.4f,%.6f\n", np, w.PFlops,
				perf.WeakEfficiency(*elems, np, lo, 128, 4), w.StepTime)
		}
		w := perf.WeakScaling(*elems, 155000, 128, 4)
		fmt.Printf("155000,%.4f,%.4f,%.6f\n", w.PFlops,
			perf.WeakEfficiency(*elems, 155000, lo, 128, 4), w.StepTime)
	case "model-overlap":
		// Ablation: the redesigned bndry_exchangev vs the original, as a
		// function of scale (the paper: comm is ~23% of prim_run at
		// millions of cores; overlap removes most of it).
		h := perf.DefaultHOMMEConfig(defInt(*ne, 1024))
		lo, hi := defInt(*minNp, 4096), defInt(*maxNp, 131072)
		fmt.Println("nprocs,step_no_overlap,step_overlap,saving_pct")
		for np := lo; np <= hi; np *= 2 {
			tNo, _ := h.StepTime(np, false)
			tOv, _ := h.StepTime(np, true)
			fmt.Printf("%d,%.6f,%.6f,%.1f\n", np, tNo, tOv, 100*(tNo-tOv)/tNo)
		}
	default:
		fmt.Fprintf(os.Stderr, "scaling: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func defInt(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "scaling: %v\n", err)
	os.Exit(1)
}

func parseBackend(name string) exec.Backend {
	switch name {
	case "intel":
		return exec.Intel
	case "mpe":
		return exec.MPE
	case "openacc":
		return exec.OpenACC
	case "athread":
		return exec.Athread
	}
	fmt.Fprintf(os.Stderr, "scaling: unknown backend %q\n", name)
	os.Exit(2)
	return 0
}

func runMeasured(mode string, ne, minNp, maxNp int, backendName string,
	nlev, qsize, steps, budgetMB, weakElems int, overlap bool,
	dir, projectNe string, machineRanks int) {
	backend := parseBackend(backendName)
	ne = defInt(ne, 8)
	lo, hi := defInt(minNp, 16), defInt(maxNp, 256)
	var ranks []int
	for np := lo; np <= hi; np *= 2 {
		ranks = append(ranks, np)
	}
	if len(ranks) == 0 {
		fatal(fmt.Errorf("empty rank sweep: min-np %d > max-np %d", lo, hi))
	}

	c := &scale.Campaign{Cfg: scale.Config{
		Backend: backend, Nlev: nlev, Qsize: qsize, Steps: steps,
		Overlap: overlap, BudgetBytes: int64(budgetMB) << 20,
		WeakElemsPerRank: weakElems,
	}}
	skip := func(kind string) func(int, error) {
		return func(r int, why error) {
			fmt.Fprintf(os.Stderr, "scaling: %s sweep skipped ranks=%d: %v\n", kind, r, why)
		}
	}
	fmt.Fprintf(os.Stderr, "scaling: strong sweep ne=%d ranks %v (%s, nlev=%d qsize=%d steps=%d)\n",
		ne, ranks, backendName, nlev, qsize, steps)
	strong, err := c.StrongSweep(ne, ranks, skip("strong"))
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "scaling: weak sweep ranks %v (target %d elems/rank)\n", ranks, weakElems)
	weak, err := c.WeakSweep(ranks, skip("weak"))
	if err != nil {
		fatal(err)
	}

	block := &obs.BenchScaling{
		Mode:        "measured",
		Backend:     backendName,
		BudgetBytes: c.Cfg.BudgetBytes,
		Weak:        weak,
		Strong:      strong,
	}
	printCurve("strong scaling (measured)", strong)
	printCurve("weak scaling (measured)", weak)

	if mode == "calibrate" {
		all := append(append([]obs.BenchScalingPoint{}, strong...), weak...)
		fit, err := scale.Fit(all)
		if err != nil {
			fatal(err)
		}
		var nes []int
		for _, tok := range strings.Split(projectNe, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				fatal(fmt.Errorf("bad -project-ne entry %q: %w", tok, err))
			}
			nes = append(nes, n)
		}
		proj, err := scale.Extrapolate(fit, all, nes, machineRanks, nlev, qsize)
		if err != nil {
			fatal(err)
		}
		block.Mode = "calibrated"
		block.Fit = &fit
		block.Projection = proj
		fmt.Printf("\ncalibrated cost model (%d points, residual RMS %.1f%%):\n",
			fit.Points, 100*fit.ResidualRMS)
		fmt.Printf("  %.3g ns/flop  %.3g ns/byte  %.3g ns/msg  %.3g ns/wire-byte  %.3g ns fixed\n",
			fit.NsPerFlop, fit.NsPerByte, fit.NsPerMsg, fit.NsPerWireByte, fit.FixedNs)
		fmt.Printf("\nextrapolation to %d ranks (calibrated this-box cores | analytic TaihuLight model):\n",
			machineRanks)
		fmt.Println("ne,res_km,ranks,sypd_calibrated,sypd_model")
		for _, r := range proj {
			fmt.Printf("%d,%.3g,%d,%.4g,%.4g\n", r.Ne, r.ResKm, r.Ranks, r.SYPD, r.ModelSYPD)
		}
	}

	if dir != "" {
		strongest := strong[0]
		f := obs.NewBenchFile(obs.BenchConfig{
			Ne: strongest.Ne, Nlev: nlev, Qsize: qsize,
			Steps: strongest.Steps, Ranks: strongest.Ranks,
		})
		f.Backends = nil
		f.Scaling = block
		path, err := obs.WriteBenchFile(dir, f)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "scaling: wrote %s\n", path)
	}
}

func printCurve(title string, pts []obs.BenchScalingPoint) {
	fmt.Printf("\n%s:\n", title)
	fmt.Println("ne,ranks,elems_per_rank,per_step_ms,sypd,dyn_ms,halo_ms,coll_ms,wire_mb,rank_mb")
	for _, p := range pts {
		fmt.Printf("%d,%d,%d,%.3f,%.4g,%.3f,%.3f,%.3f,%.3f,%.1f\n",
			p.Ne, p.Ranks, p.ElemsPerRank,
			float64(p.PerStepNs)/1e6, p.SYPD,
			float64(p.DynNs)/1e6, float64(p.HaloNs)/1e6, float64(p.CollNs)/1e6,
			float64(p.WireBytes)/(1<<20), float64(p.RankBytes)/(1<<20))
	}
}
