// Command scaling sweeps the TaihuLight machine model over process
// counts, printing CSV for the strong-scaling (Figure 7) and
// weak-scaling (Figure 8) experiments, plus an ablation of the §7.6
// communication/computation overlap.
//
//	scaling -mode strong -ne 256
//	scaling -mode weak -elems 650
//	scaling -mode overlap -ne 1024
package main

import (
	"flag"
	"fmt"
	"os"

	"swcam/internal/perf"
)

func main() {
	mode := flag.String("mode", "strong", "strong | weak | overlap")
	ne := flag.Int("ne", 256, "resolution for strong/overlap modes")
	elems := flag.Int("elems", 48, "elements per process for weak mode")
	flag.Parse()

	switch *mode {
	case "strong":
		h := perf.DefaultHOMMEConfig(*ne)
		base := 4096
		fmt.Println("nprocs,pflops,efficiency,step_seconds")
		for np := base; np <= 131072; np *= 2 {
			t, _ := h.StepTime(np, true)
			fmt.Printf("%d,%.4f,%.4f,%.6f\n", np, h.PFlops(np, true),
				h.Efficiency(np, base, true), t)
		}
	case "weak":
		fmt.Println("nprocs,pflops,efficiency,step_seconds")
		for np := 512; np <= 131072; np *= 2 {
			w := perf.WeakScaling(*elems, np, 128, 4)
			fmt.Printf("%d,%.4f,%.4f,%.6f\n", np, w.PFlops,
				perf.WeakEfficiency(*elems, np, 512, 128, 4), w.StepTime)
		}
		w := perf.WeakScaling(*elems, 155000, 128, 4)
		fmt.Printf("155000,%.4f,%.4f,%.6f\n", w.PFlops,
			perf.WeakEfficiency(*elems, 155000, 512, 128, 4), w.StepTime)
	case "overlap":
		// Ablation: the redesigned bndry_exchangev vs the original, as a
		// function of scale (the paper: comm is ~23% of prim_run at
		// millions of cores; overlap removes most of it).
		h := perf.DefaultHOMMEConfig(*ne)
		fmt.Println("nprocs,step_no_overlap,step_overlap,saving_pct")
		for np := 4096; np <= 131072; np *= 2 {
			tNo, _ := h.StepTime(np, false)
			tOv, _ := h.StepTime(np, true)
			fmt.Printf("%d,%.6f,%.6f,%.1f\n", np, tNo, tOv, 100*(tNo-tOv)/tNo)
		}
	default:
		fmt.Fprintf(os.Stderr, "scaling: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}
