// Command swprof is the benchmark-regression profiler: it runs the
// distributed dynamics under every execution backend on one
// configuration, collects the unified observability data (per-kernel
// wall time and architectural events, halo and runtime counters), and
// appends a BENCH_<n>.json data point — the perf-trajectory record CI's
// bench-smoke job validates.
//
//	swprof -ne 2 -nlev 4 -steps 5 -ranks 2 -dir bench/
//	swprof -ne 4 -nlev 8 -steps 10 -ranks 4 -trace prof.trace.json
//	swprof -ne 4 -nlev 8 -steps 10 -ranks 2 -dyn-workers 4 -dir bench/
//	swprof -ne 2 -nlev 4 -steps 6 -ranks 3 -faults chaos:4@42 -recovery ladder -dir bench/
//	swprof -validate bench/BENCH_1.json
//
// -dyn-workers sets the intra-rank tiling pool (see internal/exec):
// recording one run with -dyn-workers 1 and one with -dyn-workers 4 on
// the same configuration yields a serial-vs-tiled pair of BENCH files
// whose SYPD ratio is the intra-rank speedup.
//
// With -trace the four backend runs land in one Chrome trace
// (pid = rank; runs follow each other on the time axis, spans carry the
// backend as their category). Load it in chrome://tracing or
// ui.perfetto.dev.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"swcam/internal/core"
	"swcam/internal/dycore"
	"swcam/internal/exec"
	"swcam/internal/mpirt"
	"swcam/internal/obs"
)

func main() {
	ne := flag.Int("ne", 2, "cubed-sphere resolution (elements per edge)")
	nlev := flag.Int("nlev", 4, "vertical levels")
	qsize := flag.Int("qsize", 3, "tracers")
	steps := flag.Int("steps", 5, "dynamics steps per backend")
	ranks := flag.Int("ranks", 2, "simulated core groups")
	dynWorkers := flag.Int("dyn-workers", 1, "intra-rank dynamics workers per rank (0 = one per CPU up to 8, 1 = serial; results are bit-identical for any value)")
	dir := flag.String("dir", ".", "directory receiving BENCH_<n>.json")
	tracePath := flag.String("trace", "", "also write a combined Chrome trace to this file")
	validate := flag.String("validate", "", "validate an existing BENCH_<n>.json and exit")
	faults := flag.String("faults", "", "fault-injection spec per backend run (kill:R@OP, corrupt:R@OP, drop:R@OP, delay:R@OP:MS, chaos:N@SEED); the run executes under supervision and the bench file records the recovery activity")
	recovery := flag.String("recovery", "ladder", "with -faults: recovery strategy: ladder|global")
	spares := flag.Int("spares", 0, "with -recovery ladder: spare ranks for replacing permanently dead ranks")
	overlap := flag.Bool("overlap", true, "use the redesigned boundary-first exchange (§7.6); false selects the original blocking exchange")
	requireOverlap := flag.Bool("require-overlap", false, "fail unless every backend run measured a comm/compute overlap ratio > 0 (needs -overlap and ranks > 1)")
	flag.Parse()

	if *validate != "" {
		f, err := obs.LoadBenchFile(*validate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swprof:", err)
			os.Exit(1)
		}
		fmt.Printf("swprof: %s valid (%s, %d backends)\n", *validate, f.Schema, len(f.Backends))
		return
	}
	if *steps < 1 || *ranks < 1 {
		fmt.Fprintln(os.Stderr, "swprof: -steps and -ranks must be positive")
		os.Exit(2)
	}
	if *recovery != "ladder" && *recovery != "global" {
		fmt.Fprintf(os.Stderr, "swprof: unknown -recovery %q (ladder|global)\n", *recovery)
		os.Exit(2)
	}

	cfg := dycore.DefaultConfig(*ne)
	cfg.Nlev = *nlev
	cfg.Qsize = *qsize

	if *dynWorkers <= 0 {
		*dynWorkers = exec.DefaultDynWorkers()
	}
	bench := obs.NewBenchFile(obs.BenchConfig{
		Ne: *ne, Nlev: *nlev, Qsize: *qsize, Steps: *steps, Ranks: *ranks,
		DynWorkers: *dynWorkers,
	})
	tracer := obs.NewTracer()
	for r := 0; r < *ranks; r++ {
		tracer.NameProcess(r, fmt.Sprintf("rank %d", r))
	}

	backends := []exec.Backend{exec.Intel, exec.MPE, exec.OpenACC, exec.Athread}
	fmt.Printf("swprof: ne%d nlev=%d qsize=%d, %d steps x %d ranks, %d intra-rank workers, %d backends\n",
		*ne, *nlev, *qsize, *steps, *ranks, *dynWorkers, len(backends))
	for _, b := range backends {
		name := strings.ToLower(b.String())
		sypd, wall, ratio, measured, err := runBackend(cfg, b, *ranks, *steps, *dynWorkers,
			*overlap, *faults, *recovery, *spares, tracer, bench)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swprof: %s: %v\n", name, err)
			os.Exit(1)
		}
		ostr := "n/a"
		if measured {
			ostr = fmt.Sprintf("%.0f%%", 100*ratio)
		}
		fmt.Printf("  %-8s %8.3fs wall  SYPD %10.3f  overlap %s\n", name, wall, sypd, ostr)
		if *requireOverlap && (!measured || ratio <= 0) {
			fmt.Fprintf(os.Stderr, "swprof: %s: overlap ratio not > 0 (measured=%v ratio=%g); the redesigned exchange hid no communication\n",
				name, measured, ratio)
			os.Exit(1)
		}
	}
	if rec := bench.Recovery; rec != nil {
		fmt.Printf("  recovery (%s, all backends): %d/%d retransmits recovered, %d ckpt, %d localized, %d respawn, %d shrink, %d rollback, %.1f ms\n",
			*recovery, rec.Retransmitted, rec.Retransmits, rec.Checkpoints,
			rec.Localized, rec.Respawns, rec.Shrinks, rec.Rollbacks,
			float64(rec.RecoveryWallNs)/1e6)
	}

	path, err := obs.WriteBenchFile(*dir, bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swprof:", err)
		os.Exit(1)
	}
	fmt.Printf("bench written: %s\n", path)

	if *tracePath != "" {
		if err := tracer.WriteChromeTraceFile(*tracePath); err != nil {
			fmt.Fprintln(os.Stderr, "swprof: trace:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written: %s (%d events; load in chrome://tracing or ui.perfetto.dev)\n",
			*tracePath, tracer.Len())
	}
}

// runBackend measures one backend: a fresh job and probe (sharing the
// combined tracer), one timed run, one bench entry. With a fault spec
// the run executes under the recovery supervisor (fresh fault plan per
// backend, so every backend faces the same schedule) and the recovery
// activity accumulates into the bench file's recovery block. The
// returned ratio is the measured comm/compute overlap (valid only when
// measured is true — i.e. the redesigned exchange ran real inner work).
func runBackend(cfg dycore.Config, b exec.Backend, ranks, steps, dynWorkers int,
	overlap bool, faultSpec, recoveryMode string, spares int,
	tracer *obs.Tracer, bench *obs.BenchFile) (sypd, wall, ratio float64, measured bool, err error) {
	job, err := core.NewParallelJob(cfg, b, overlap, ranks)
	if err != nil {
		return 0, 0, 0, false, err
	}
	job.SetDynWorkers(dynWorkers)
	probe := &obs.Probe{Tracer: tracer, Reg: obs.NewRegistry(), Kernels: obs.NewKernelTable()}
	job.Instrument(probe)

	s, err := dycore.NewSolver(cfg)
	if err != nil {
		return 0, 0, 0, false, err
	}
	g := s.NewState()
	s.InitBaroclinicWave(g)
	local := job.Scatter(g)

	if faultSpec == "" {
		start := time.Now()
		if _, err := job.RunChecked(local, steps); err != nil {
			return 0, 0, 0, false, err
		}
		wall = time.Since(start).Seconds()
	} else {
		// A rank performs on the order of 40 communication ops per step;
		// chaos:N@SEED events are spread over that estimated span.
		plan, err := mpirt.ParseFaultPlan(faultSpec, ranks, int64(steps)*40)
		if err != nil {
			return 0, 0, 0, false, err
		}
		job.Faults = plan
		job.RecvTimeout = 2 * time.Second
		job.CheckEvery = 1
		rj := core.NewResilientJob(job)
		rj.Mode = core.ModeGlobal
		if recoveryMode == "ladder" {
			rj.Mode = core.ModeLadder
		}
		rj.CheckpointEvery = 1
		rj.MaxRetries = 10
		rj.Spares = spares
		start := time.Now()
		rs, err := rj.Run(local, steps)
		if err != nil {
			return 0, 0, 0, false, err
		}
		wall = time.Since(start).Seconds()
		rec := bench.Recovery
		if rec == nil {
			rec = &obs.BenchRecovery{}
			bench.Recovery = rec
		}
		rec.Retransmits += rs.RetxAttempts
		rec.Retransmitted += rs.RetxRecovered
		rec.Checkpoints += int64(rs.Checkpoints)
		rec.Localized += int64(rs.Localized)
		rec.Respawns += int64(rs.Respawns)
		rec.Shrinks += int64(rs.Shrinks)
		rec.Rollbacks += int64(rs.Rollbacks)
		rec.RecoveryWallNs += rs.RecoveryNs
	}
	sypd = obs.SYPD(float64(steps)*cfg.Dt, wall)
	name := strings.ToLower(b.String())
	bench.AddBackend(name, probe.Kernels, sypd, wall)
	// Overlap ratio from the run's registry counters: only recorded when
	// the redesigned exchange actually ran inner work in its window.
	windows := probe.Reg.CounterValue("halo.overlap.windows")
	haloNs := probe.Reg.CounterValue("halo.ns")
	if windows > 0 && haloNs > 0 {
		measured = true
		ratio = 1 - float64(probe.Reg.CounterValue("halo.wait.ns"))/float64(haloNs)
		if ratio < 0 {
			ratio = 0
		}
		bench.SetBackendOverlap(name, ratio)
	}
	return sypd, wall, ratio, measured, nil
}
