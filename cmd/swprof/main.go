// Command swprof is the benchmark-regression profiler: it runs the
// distributed dynamics under every execution backend on one
// configuration, collects the unified observability data (per-kernel
// wall time and architectural events, halo and runtime counters), and
// appends a BENCH_<n>.json data point — the perf-trajectory record CI's
// bench-smoke job validates.
//
//	swprof -ne 2 -nlev 4 -steps 5 -ranks 2 -dir bench/
//	swprof -ne 4 -nlev 8 -steps 10 -ranks 4 -trace prof.trace.json
//	swprof -ne 4 -nlev 8 -steps 10 -ranks 2 -dyn-workers 4 -dir bench/
//	swprof -ne 2 -nlev 4 -steps 6 -ranks 3 -faults chaos:4@42 -recovery ladder -dir bench/
//	swprof -ne 3 -nlev 8 -steps 6 -ranks 2 -physics moist -phys-workers 0 -dir bench/
//	swprof -ne 2 -nlev 4 -steps 6 -ranks 3 -faults chaosflip:6@42 -scrub-every 1 -ckpt-generations 3 -dir bench/
//	swprof -validate bench/BENCH_1.json
//
// -scrub-every turns on the silent-data-corruption defenses (at-rest
// CRC scrubbing of every rank's resident state plus the global
// conservation ledger); with flip faults injected the bench file's
// integrity block records every detection and swprof exits nonzero if
// any injected flip went undetected or the recovered trajectory is not
// bit-identical to a fault-free replica.
//
// -dyn-workers sets the intra-rank tiling pool (see internal/exec):
// recording one run with -dyn-workers 1 and one with -dyn-workers 4 on
// the same configuration yields a serial-vs-tiled pair of BENCH files
// whose SYPD ratio is the intra-rank speedup. 0 selects adaptive
// sizing: every rank picks its own pool from its element count and
// downshifts to the serial fast path when tiles are too small to
// amortize (exec.AdaptiveWorkers).
//
// -physics steps a column-physics suite inside the run and records the
// work-stealing pool's activity (chunks, steals, per-worker
// utilization) in the bench file's phys block, along with a paired
// serial-vs-parallel physics measurement on the Intel backend — the
// SYPD ratio is the physics-parallelism speedup. Physics results are
// bit-identical for every -phys-workers value.
//
// With -trace the four backend runs land in one Chrome trace
// (pid = rank; runs follow each other on the time axis, spans carry the
// backend as their category). Load it in chrome://tracing or
// ui.perfetto.dev.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"swcam/internal/core"
	"swcam/internal/dycore"
	"swcam/internal/exec"
	"swcam/internal/mpirt"
	"swcam/internal/obs"
	"swcam/internal/physics"
)

func main() {
	ne := flag.Int("ne", 2, "cubed-sphere resolution (elements per edge)")
	nlev := flag.Int("nlev", 4, "vertical levels")
	qsize := flag.Int("qsize", 3, "tracers")
	steps := flag.Int("steps", 5, "dynamics steps per backend")
	ranks := flag.Int("ranks", 2, "simulated core groups")
	dynWorkers := flag.Int("dyn-workers", 1, "intra-rank dynamics workers per rank (0 = adaptive: sized per rank from its element count, downshifting to serial on small ranks; 1 = serial; results are bit-identical for any value)")
	physMode := flag.String("physics", "", "column-physics suite stepped during the run: moist|held-suarez (default: adiabatic dynamics only)")
	physEvery := flag.Int("phys-every", 1, "with -physics: apply physics every N dynamics steps")
	physWorkers := flag.Int("phys-workers", 1, "with -physics: work-stealing physics workers per rank (0 = auto-size to the machine, downshifting to serial on small ranks; 1 = serial; results are bit-identical for any value)")
	dir := flag.String("dir", ".", "directory receiving BENCH_<n>.json")
	tracePath := flag.String("trace", "", "also write a combined Chrome trace to this file")
	validate := flag.String("validate", "", "validate an existing BENCH_<n>.json and exit")
	faults := flag.String("faults", "", "fault-injection spec per backend run (kill:R@OP, corrupt:R@OP, drop:R@OP, delay:R@OP:MS, flipState:R@OP, flipCheckpoint:R@OP, flipBuddy:R@OP, chaos:N@SEED, chaosflip:N@SEED); the run executes under supervision and the bench file records the recovery activity")
	recovery := flag.String("recovery", "ladder", "with -faults: recovery strategy: ladder|global")
	spares := flag.Int("spares", 0, "with -recovery ladder: spare ranks for replacing permanently dead ranks")
	overlap := flag.Bool("overlap", true, "use the redesigned boundary-first exchange (§7.6); false selects the original blocking exchange")
	requireOverlap := flag.Bool("require-overlap", false, "fail unless every backend run measured a comm/compute overlap ratio > 0 (needs -overlap and ranks > 1)")
	scrubEvery := flag.Int("scrub-every", 0, "enable the SDC defenses: CRC-seal each rank's state every N steps and verify it at the next at-rest window, plus the mass/energy/tracer conservation ledger (0 = off; 1 is the only cadence that catches every resident flip before a checkpoint captures it)")
	ckptGenerations := flag.Int("ckpt-generations", 1, "with -faults: verified checkpoint generations to retain; a restore target that fails verification escalates to the next-older generation")
	flag.Parse()

	if *validate != "" {
		f, err := obs.LoadBenchFile(*validate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swprof:", err)
			os.Exit(1)
		}
		fmt.Printf("swprof: %s valid (%s, %d backends)\n", *validate, f.Schema, len(f.Backends))
		return
	}
	if *steps < 1 || *ranks < 1 {
		fmt.Fprintln(os.Stderr, "swprof: -steps and -ranks must be positive")
		os.Exit(2)
	}
	if *recovery != "ladder" && *recovery != "global" {
		fmt.Fprintf(os.Stderr, "swprof: unknown -recovery %q (ladder|global)\n", *recovery)
		os.Exit(2)
	}

	var suiteMode physics.SuiteMode
	switch *physMode {
	case "":
	case "moist":
		suiteMode = physics.Moist
		if *qsize < 1 {
			fmt.Fprintln(os.Stderr, "swprof: -physics moist needs -qsize >= 1")
			os.Exit(2)
		}
	case "held-suarez":
		suiteMode = physics.HeldSuarezMode
	default:
		fmt.Fprintf(os.Stderr, "swprof: unknown -physics %q (moist|held-suarez)\n", *physMode)
		os.Exit(2)
	}
	if *physEvery < 1 {
		fmt.Fprintln(os.Stderr, "swprof: -phys-every must be positive")
		os.Exit(2)
	}
	if *scrubEvery < 0 {
		fmt.Fprintln(os.Stderr, "swprof: -scrub-every must be >= 0")
		os.Exit(2)
	}
	if *ckptGenerations < 1 {
		fmt.Fprintln(os.Stderr, "swprof: -ckpt-generations must be >= 1")
		os.Exit(2)
	}

	cfg := dycore.DefaultConfig(*ne)
	cfg.Nlev = *nlev
	cfg.Qsize = *qsize

	// dyn-workers 0 stays 0: SetDynWorkers passes it through as per-rank
	// adaptive sizing. phys-workers 0 maps to the negative auto sentinel
	// of the core config convention (0 is the legacy "serial" encoding).
	physReq := *physWorkers
	if physReq == 0 {
		physReq = -1
	}
	bench := obs.NewBenchFile(obs.BenchConfig{
		Ne: *ne, Nlev: *nlev, Qsize: *qsize, Steps: *steps, Ranks: *ranks,
		DynWorkers: *dynWorkers, Physics: *physMode, PhysWorkers: *physWorkers,
	})
	tracer := obs.NewTracer()
	for r := 0; r < *ranks; r++ {
		tracer.NameProcess(r, fmt.Sprintf("rank %d", r))
	}

	backends := []exec.Backend{exec.Intel, exec.MPE, exec.OpenACC, exec.Athread}
	dw := "adaptive"
	if *dynWorkers > 0 {
		dw = fmt.Sprintf("%d", *dynWorkers)
	}
	phys := "off"
	if *physMode != "" {
		pw := "auto"
		if *physWorkers > 0 {
			pw = fmt.Sprintf("%d", *physWorkers)
		}
		phys = fmt.Sprintf("%s every %d on %s workers", *physMode, *physEvery, pw)
	}
	fmt.Printf("swprof: ne%d nlev=%d qsize=%d, %d steps x %d ranks, %s intra-rank workers, physics %s, %d backends\n",
		*ne, *nlev, *qsize, *steps, *ranks, dw, phys, len(backends))
	run := runSpec{
		cfg: cfg, ranks: *ranks, steps: *steps, dynWorkers: *dynWorkers,
		overlap: *overlap, faults: *faults, recovery: *recovery, spares: *spares,
		physMode: *physMode, suiteMode: suiteMode, physEvery: *physEvery, physReq: physReq,
		scrubEvery: *scrubEvery, generations: *ckptGenerations,
	}
	for _, b := range backends {
		name := strings.ToLower(b.String())
		sypd, wall, ratio, measured, err := runBackend(run, b, tracer, bench)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swprof: %s: %v\n", name, err)
			os.Exit(1)
		}
		ostr := "n/a"
		if measured {
			ostr = fmt.Sprintf("%.0f%%", 100*ratio)
		}
		fmt.Printf("  %-8s %8.3fs wall  SYPD %10.3f  overlap %s\n", name, wall, sypd, ostr)
		if *requireOverlap && (!measured || ratio <= 0) {
			fmt.Fprintf(os.Stderr, "swprof: %s: overlap ratio not > 0 (measured=%v ratio=%g); the redesigned exchange hid no communication\n",
				name, measured, ratio)
			os.Exit(1)
		}
	}
	if rec := bench.Recovery; rec != nil {
		fmt.Printf("  recovery (%s, all backends): %d/%d retransmits recovered, %d ckpt, %d localized, %d respawn, %d shrink, %d rollback, %.1f ms\n",
			*recovery, rec.Retransmitted, rec.Retransmits, rec.Checkpoints,
			rec.Localized, rec.Respawns, rec.Shrinks, rec.Rollbacks,
			float64(rec.RecoveryWallNs)/1e6)
	}
	if ph := bench.Phys; ph != nil {
		// The paired serial-vs-parallel physics measurement: the same
		// configuration on the Intel backend with a 1-worker pool and with
		// the requested pool, fault-free. Their SYPD ratio is the physics
		// speedup this box delivers (expect ~1x on few-core machines — the
		// CI bench-smoke job asserts > 1x only on >= 4-core runners).
		serial, err := pairSYPD(run, 1)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swprof: phys pair (serial):", err)
			os.Exit(1)
		}
		par, err := pairSYPD(run, run.physReq)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swprof: phys pair (parallel):", err)
			os.Exit(1)
		}
		ph.SerialSYPD, ph.ParallelSYPD = serial, par
		fmt.Printf("  physics (%d workers, all backends): %d columns, %d chunks, %d steals / %d attempts; pair SYPD serial %.3f vs parallel %.3f (%.2fx)\n",
			ph.Workers, ph.Columns, ph.Chunks, ph.Steals, ph.StealAttempts,
			serial, par, par/serial)
	}

	if in := bench.Integrity; in != nil {
		detected := in.ScrubDetections + in.LedgerDetections + in.PoisonedCopies + in.PreShipRejects
		fmt.Printf("  integrity (scrub every %d, %d generations, all backends): %d seals, %d verifies, %d/%d flips detected, %d poisoned, %d escalations, scrub overhead %.2f%%\n",
			in.ScrubEvery, in.Generations, in.Seals, in.Verifies,
			detected, in.FlipsInjected, in.PoisonedCopies, in.Escalations, in.OverheadPct)
		if detected < in.FlipsInjected {
			fmt.Fprintf(os.Stderr, "swprof: %d injected flips but only %d detections — silent corruption went unnoticed\n",
				in.FlipsInjected, detected)
			os.Exit(1)
		}
	}

	path, err := obs.WriteBenchFile(*dir, bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swprof:", err)
		os.Exit(1)
	}
	fmt.Printf("bench written: %s\n", path)

	if *tracePath != "" {
		if err := tracer.WriteChromeTraceFile(*tracePath); err != nil {
			fmt.Fprintln(os.Stderr, "swprof: trace:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written: %s (%d events; load in chrome://tracing or ui.perfetto.dev)\n",
			*tracePath, tracer.Len())
	}
}

// runSpec is one benchmark configuration, shared by every backend run
// and the physics pair measurement.
type runSpec struct {
	cfg        dycore.Config
	ranks      int
	steps      int
	dynWorkers int
	overlap    bool
	faults     string
	recovery   string
	spares     int
	physMode   string
	suiteMode  physics.SuiteMode
	physEvery  int
	physReq    int // core convention: negative = auto, 1 = serial

	scrubEvery  int // 0 = SDC defenses off
	generations int // verified checkpoint generations retained
}

// newJob builds a configured job for one run: backend, tiling pool,
// and (when requested) the physics phase with its steal pool.
func (rs runSpec) newJob(b exec.Backend, physWorkers int) (*core.ParallelJob, error) {
	job, err := core.NewParallelJob(rs.cfg, b, rs.overlap, rs.ranks)
	if err != nil {
		return nil, err
	}
	job.SetDynWorkers(rs.dynWorkers)
	if rs.physMode != "" {
		// Aquaplanet surface: the core model's default SST profile.
		if err := job.EnablePhysics(rs.suiteMode, rs.physEvery, 302, 30); err != nil {
			return nil, err
		}
		job.SetPhysWorkers(physWorkers)
	}
	if rs.scrubEvery > 0 {
		job.EnableIntegrity(rs.scrubEvery)
	}
	return job, nil
}

// initialState builds the benchmark initial condition: a baroclinic
// wave, with a moisture load in tracer 0 when moist physics runs (a dry
// column would make the convection and microphysics branches free).
func (rs runSpec) initialState() (*dycore.State, error) {
	s, err := dycore.NewSolver(rs.cfg)
	if err != nil {
		return nil, err
	}
	g := s.NewState()
	s.InitBaroclinicWave(g)
	if rs.physMode == "moist" && rs.cfg.Qsize >= 1 {
		npsq := rs.cfg.Np * rs.cfg.Np
		for ei := range g.Qdp {
			qdp := g.QdpAt(ei, 0)
			for k := 0; k < rs.cfg.Nlev; k++ {
				sig := float64(k+1) / float64(rs.cfg.Nlev)
				for n := 0; n < npsq; n++ {
					qdp[k*npsq+n] = 0.014 * sig * sig * g.DP[ei][k*npsq+n]
				}
			}
		}
	}
	return g, nil
}

// runBackend measures one backend: a fresh job and probe (sharing the
// combined tracer), one timed run, one bench entry. With a fault spec
// the run executes under the recovery supervisor (fresh fault plan per
// backend, so every backend faces the same schedule) and the recovery
// activity accumulates into the bench file's recovery block; with
// physics enabled the steal pool's activity accumulates into the phys
// block. The returned ratio is the measured comm/compute overlap (valid
// only when measured is true — i.e. the redesigned exchange ran real
// inner work).
func runBackend(rs runSpec, b exec.Backend,
	tracer *obs.Tracer, bench *obs.BenchFile) (sypd, wall, ratio float64, measured bool, err error) {
	job, err := rs.newJob(b, rs.physReq)
	if err != nil {
		return 0, 0, 0, false, err
	}
	probe := &obs.Probe{Tracer: tracer, Reg: obs.NewRegistry(), Kernels: obs.NewKernelTable()}
	job.Instrument(probe)

	g, err := rs.initialState()
	if err != nil {
		return 0, 0, 0, false, err
	}
	local := job.Scatter(g)

	if rs.faults == "" {
		start := time.Now()
		if _, err := job.RunChecked(local, rs.steps); err != nil {
			return 0, 0, 0, false, err
		}
		wall = time.Since(start).Seconds()
	} else {
		// A rank performs on the order of 40 communication ops per step;
		// chaos:N@SEED events are spread over that estimated span.
		plan, err := mpirt.ParseFaultPlan(rs.faults, rs.ranks, int64(rs.steps)*40)
		if err != nil {
			return 0, 0, 0, false, err
		}
		job.Faults = plan
		job.RecvTimeout = 2 * time.Second
		job.CheckEvery = 1
		rj := core.NewResilientJob(job)
		rj.Mode = core.ModeGlobal
		if rs.recovery == "ladder" {
			rj.Mode = core.ModeLadder
		}
		rj.CheckpointEvery = 1
		rj.MaxRetries = 10
		rj.Spares = rs.spares
		rj.Generations = rs.generations
		start := time.Now()
		rst, err := rj.Run(local, rs.steps)
		if err != nil {
			return 0, 0, 0, false, err
		}
		wall = time.Since(start).Seconds()
		if rs.scrubEvery > 0 {
			// The end-to-end SDC guarantee: after recovering from every
			// injected flip, the trajectory must be bit-identical to a
			// fault-free replica of the same backend and configuration.
			if err := rs.assertBitIdentical(b, job, rj.States()); err != nil {
				return 0, 0, 0, false, err
			}
		}
		rec := bench.Recovery
		if rec == nil {
			rec = &obs.BenchRecovery{}
			bench.Recovery = rec
		}
		rec.Retransmits += rst.RetxAttempts
		rec.Retransmitted += rst.RetxRecovered
		rec.Checkpoints += int64(rst.Checkpoints)
		rec.Localized += int64(rst.Localized)
		rec.Respawns += int64(rst.Respawns)
		rec.Shrinks += int64(rst.Shrinks)
		rec.Rollbacks += int64(rst.Rollbacks)
		rec.RecoveryWallNs += rst.RecoveryNs
	}
	sypd = obs.SYPD(float64(rs.steps)*rs.cfg.Dt, wall)
	name := strings.ToLower(b.String())
	bench.AddBackend(name, probe.Kernels, sypd, wall)
	if rs.physMode != "" {
		accumulatePhys(bench, job, probe)
	}
	if rs.scrubEvery > 0 {
		accumulateIntegrity(bench, rs, probe)
	}
	// Overlap ratio from the run's registry counters: only recorded when
	// the redesigned exchange actually ran inner work in its window.
	windows := probe.Reg.CounterValue("halo.overlap.windows")
	haloNs := probe.Reg.CounterValue("halo.ns")
	if windows > 0 && haloNs > 0 {
		measured = true
		ratio = 1 - float64(probe.Reg.CounterValue("halo.wait.ns"))/float64(haloNs)
		if ratio < 0 {
			ratio = 0
		}
		bench.SetBackendOverlap(name, ratio)
	}
	return sypd, wall, ratio, measured, nil
}

// accumulatePhys folds one backend run's steal-pool activity into the
// bench file's phys block. Column throughput comes from the run's
// registry (the suite's physics.columns counter); chunk and steal
// ledgers come from the job's pool snapshots. Worker slices accumulate
// slot-wise — every backend resolves the same pool size, so the slots
// line up.
func accumulatePhys(bench *obs.BenchFile, job *core.ParallelJob, probe *obs.Probe) {
	st := job.PhysStats()
	ph := bench.Phys
	if ph == nil {
		ph = &obs.BenchPhys{Workers: job.PhysWorkers()}
		bench.Phys = ph
	}
	ph.Columns += probe.Reg.CounterValue("physics.columns")
	ph.Chunks += st.Chunks
	ph.Steals += st.Steals
	ph.StealAttempts += st.StealAttempts
	if len(ph.WorkerChunks) == 0 {
		ph.WorkerChunks = make([]int64, ph.Workers)
		ph.WorkerBusyNs = make([]int64, ph.Workers)
	}
	for w := 0; w < ph.Workers && w < len(st.WorkerChunks); w++ {
		ph.WorkerChunks[w] += st.WorkerChunks[w]
		ph.WorkerBusyNs[w] += st.WorkerBusyNs[w]
	}
}

// assertBitIdentical runs a fault-free replica of the same backend and
// configuration and compares the FNV-64 of the gathered final state —
// the proof that detection plus verified restore converged back onto
// the clean trajectory instead of silently absorbing a flip.
func (rs runSpec) assertBitIdentical(b exec.Backend, job *core.ParallelJob, local []*dycore.State) error {
	got := core.StateFNV(job.Gather(local))
	ref, err := rs.newJob(b, rs.physReq)
	if err != nil {
		return err
	}
	g, err := rs.initialState()
	if err != nil {
		return err
	}
	rlocal := ref.Scatter(g)
	if _, err := ref.RunChecked(rlocal, rs.steps); err != nil {
		return fmt.Errorf("fault-free reference run: %w", err)
	}
	want := core.StateFNV(ref.Gather(rlocal))
	if got != want {
		return fmt.Errorf("post-recovery state fnv %016x != fault-free reference %016x — recovery was not bit-identical", got, want)
	}
	return nil
}

// accumulateIntegrity folds one backend run's SDC-defense activity into
// the bench file's integrity block from the run's registry counters.
func accumulateIntegrity(bench *obs.BenchFile, rs runSpec, probe *obs.Probe) {
	in := bench.Integrity
	if in == nil {
		in = &obs.BenchIntegrity{ScrubEvery: rs.scrubEvery, Generations: rs.generations}
		bench.Integrity = in
	}
	r := probe.Reg
	in.Seals += r.CounterValue("integrity.scrub.seals")
	in.Verifies += r.CounterValue("integrity.scrub.verifies")
	in.FlipsInjected += r.CounterValue("integrity.flips.state") +
		r.CounterValue("integrity.flips.checkpoint") +
		r.CounterValue("integrity.flips.buddy")
	in.ScrubDetections += r.CounterValue("integrity.scrub.detections")
	in.LedgerDetections += r.CounterValue("integrity.ledger.detections")
	in.PoisonedCopies += r.CounterValue("integrity.gen.poisoned")
	in.Escalations += r.CounterValue("integrity.gen.escalations")
	in.PreShipRejects += r.CounterValue("integrity.preship.rejects")
	in.ScrubNs += r.CounterValue("integrity.scrub.ns")
	in.StepNs += r.CounterValue("core.step.ns")
	if in.StepNs > 0 {
		in.OverheadPct = 100 * float64(in.ScrubNs) / float64(in.StepNs)
	}
}

// pairSYPD runs the benchmark configuration once on the Intel backend,
// fault-free, with an n-worker physics pool — one half of the
// serial-vs-parallel physics pair recorded in the phys block.
func pairSYPD(rs runSpec, n int) (float64, error) {
	job, err := rs.newJob(exec.Intel, n)
	if err != nil {
		return 0, err
	}
	g, err := rs.initialState()
	if err != nil {
		return 0, err
	}
	local := job.Scatter(g)
	start := time.Now()
	if _, err := job.RunChecked(local, rs.steps); err != nil {
		return 0, err
	}
	return obs.SYPD(float64(rs.steps)*rs.cfg.Dt, time.Since(start).Seconds()), nil
}
