# swcam — build/test/reproduce targets. Stdlib-only Go; no network needed.

GO ?= go

.PHONY: all build vet test race bench figures outputs clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark per paper table/figure plus the ablations.
bench:
	$(GO) test -bench=. -benchmem .

# Print every table and figure of the paper's evaluation.
figures:
	$(GO) run ./cmd/benchtab -all

# The capture the repository ships with (test_output.txt, bench_output.txt).
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
