# swcam — build/test/reproduce targets. Stdlib-only Go; no network needed.

GO ?= go

.PHONY: all build vet test race bench trace figures outputs clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark per paper table/figure plus the ablations, and a
# BENCH_<n>.json regression point from the profiler.
bench:
	$(GO) test -bench=. -benchmem .
	$(GO) run ./cmd/swprof -ne 2 -nlev 4 -steps 5 -ranks 2 -dir .

# A Chrome trace of all four backends on a small configuration; load
# swcam.trace.json in chrome://tracing or ui.perfetto.dev.
trace:
	$(GO) run ./cmd/swprof -ne 2 -nlev 4 -steps 5 -ranks 2 -dir . -trace swcam.trace.json

# Print every table and figure of the paper's evaluation.
figures:
	$(GO) run ./cmd/benchtab -all

# The capture the repository ships with (test_output.txt, bench_output.txt).
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt swcam.trace.json BENCH_*.json
