# swcam — build/test/reproduce targets. Stdlib-only Go; no network needed.

GO ?= go

.PHONY: all build vet test race fuzz bench bench-tiled bench-overlap bench-phys bench-integrity kernel-parity scaling trace figures outputs serve loadgen clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Native fuzzing over every untrusted-bytes decoder (checkpoint,
# history, BENCH json, buddy-snapshot wire payloads), 30s each on top
# of the checked-in seed corpora.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/core/ -run '^$$' -fuzz '^FuzzReadCheckpoint$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core/ -run '^$$' -fuzz '^FuzzReadHistory$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/obs/ -run '^$$' -fuzz '^FuzzDecodeBench$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core/ -run '^$$' -fuzz '^FuzzDecodeRankSnapshot$$' -fuzztime $(FUZZTIME)

# One benchmark per paper table/figure plus the ablations, and a
# BENCH_<n>.json regression point from the profiler.
bench:
	$(GO) test -bench=. -benchmem .
	$(GO) run ./cmd/swprof -ne 2 -nlev 4 -steps 5 -ranks 2 -dir .

# The serial/tiled BENCH pair: two regression points with identical
# model configuration differing only in -dyn-workers, so the speedup
# reads directly off consecutive BENCH_<n>.json wall_seconds.
bench-tiled:
	$(GO) run ./cmd/swprof -ne 4 -nlev 8 -steps 5 -ranks 2 -dyn-workers 1 -dir bench
	$(GO) run ./cmd/swprof -ne 4 -nlev 8 -steps 5 -ranks 2 -dyn-workers 4 -dir bench

# The original/overlap BENCH pair (§7.6): identical configuration, the
# first run under the blocking exchange, the second under the
# boundary-first redesign with the measured per-backend overlap_ratio
# recorded (and required to be > 0).
bench-overlap:
	$(GO) run ./cmd/swprof -ne 4 -nlev 8 -steps 5 -ranks 4 -overlap=false -dir bench
	$(GO) run ./cmd/swprof -ne 4 -nlev 8 -steps 5 -ranks 4 -require-overlap -dir bench

# The parallel-physics BENCH point: moist physics on the work-stealing
# column pool, recording the steal ledger, per-worker utilization, and
# a paired serial-vs-parallel physics SYPD measurement in the phys
# block (results are bit-identical for any -phys-workers value).
bench-phys:
	$(GO) run ./cmd/swprof -ne 3 -nlev 8 -steps 6 -ranks 2 \
	    -physics moist -phys-every 2 -phys-workers 4 -dir bench

# The integrity BENCH point: seeded bit flips into resident state,
# checkpoints, and buddy copies, with per-step CRC scrubbing, the
# conservation ledgers, and a 3-generation verified checkpoint ring.
# swprof exits nonzero unless every flip is detected and the recovered
# trajectory is bit-identical to fault-free; the integrity block
# records detections vs injected and the measured scrub overhead.
bench-integrity:
	$(GO) run ./cmd/swprof -ne 2 -nlev 4 -steps 6 -ranks 3 \
	    -faults 'chaosflip:6@42' -recovery ladder \
	    -scrub-every 1 -ckpt-generations 3 -dir bench

# Kernel Cost parity: re-run the BENCH_9 configuration on the
# single-source lowered kernels and diff every per-backend kernel Cost
# column (calls, flops, bytes) — exact against the landed
# bench/BENCH_9.json, and against the pre-fix bench/BENCH_8.json with
# the one documented exemption for the hypervis_dp2 flop re-derivation.
# Mirrors the CI kernel-parity job.
kernel-parity:
	$(GO) test -race -count=1 \
	    -run 'TestLoweredKernel|TestHypervisUpdateFlopParity|TestAthreadDP2VectorCounters|TestAnalyticFormulasDerivedFromSpecs|TestRowLevelsEdgeCases' \
	    ./internal/exec/
	mkdir -p parity-out
	$(GO) run ./cmd/swprof -ne 2 -nlev 4 -steps 6 -ranks 3 \
	    -faults 'chaosflip:6@42' -recovery ladder \
	    -scrub-every 1 -ckpt-generations 3 -dir parity-out
	$(GO) run ./cmd/benchtab -parity parity-out/BENCH_1.json -against bench/BENCH_9.json
	$(GO) run ./cmd/benchtab -parity parity-out/BENCH_1.json \
	    -against bench/BENCH_8.json -allow-flops hypervis_dp2

# The measured scaling campaign (internal/scale): real weak+strong
# goroutine-rank sweeps on this box up to 256 ranks, the calibrated
# cost-model fit, and the full-machine SYPD-vs-resolution
# extrapolation table, appended to bench/ as a BENCH `scaling` block.
scaling:
	$(GO) run ./cmd/scaling -mode calibrate -ne 8 -min-np 16 -max-np 256 \
	    -backend athread -dir bench

# A Chrome trace of all four backends on a small configuration; load
# swcam.trace.json in chrome://tracing or ui.perfetto.dev.
trace:
	$(GO) run ./cmd/swprof -ne 2 -nlev 4 -steps 5 -ranks 2 -dir . -trace swcam.trace.json

# The ensemble forecast service under fire: three perturbed members,
# seeded member kills and a chaos fault plan, so the degradation paths
# (supervised restart, stale serving, subensemble fallback) are live
# from the first minute. SIGTERM drains gracefully.
# members reach the 120-cycle forecast horizon, complete, and keep
# serving their final snapshot (toy resolutions cannot free-run
# forever; see DESIGN.md §12).
serve:
	$(GO) run ./cmd/swserve -addr 127.0.0.1:8090 -members 3 \
	    -ranks 2 -cycle-steps 2 -backend athread -horizon-cycles 120 \
	    -kills '1@4,2@7' -faults 'chaos:2@42'

# Seeded closed-loop load against a running `make serve`: prints the
# latency percentiles and status histogram, and appends a BENCH file
# with the `serving` block to bench/.
loadgen:
	$(GO) run ./cmd/swload -addr http://127.0.0.1:8090 -duration 15s \
	    -workers 4 -seed 7 -bench-dir bench

# Print every table and figure of the paper's evaluation.
figures:
	$(GO) run ./cmd/benchtab -all

# The capture the repository ships with (test_output.txt, bench_output.txt).
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt swcam.trace.json BENCH_*.json
