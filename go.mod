module swcam

go 1.22
